package checker

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
)

// Progress is one periodic snapshot of a running exploration, the
// Spin-style progress line. The checker emits it through
// Options.Progress every Options.ProgressInterval, plus one final
// snapshot (Final == true) when the search ends.
type Progress struct {
	// Phase names the search: "safety-dfs", "safety-dfs-por",
	// "safety-bfs", "safety-par-bfs", "liveness-ndfs",
	// "liveness-strongfair", "reachability", "reachability-par",
	// "ag-ef".
	Phase string
	// Exploration counters so far.
	StatesStored  int
	StatesMatched int
	Transitions   int
	Depth         int
	Reduced       int
	// Frontier is the size of the current BFS level (parallel engines
	// only; 0 for depth-first searches).
	Frontier int
	// Elapsed is the time since the search started; StatesPerSec is the
	// average storage rate over that window.
	Elapsed      time.Duration
	StatesPerSec float64
	// HeapAlloc is the live heap in bytes at snapshot time.
	HeapAlloc uint64
	// Final marks the last snapshot of the search.
	Final bool
}

// meterCheckEvery bounds how often the meter consults the clock: once
// per this many stored states. Keeps the disabled/armed hot-path cost
// to a counter decrement.
const meterCheckEvery = 1024

// meter drives progress callbacks and metrics publication for one
// search. A nil meter (observability disabled) makes every method a
// no-op, so search loops call it unconditionally.
type meter struct {
	opts      *Options
	phase     string
	start     time.Time
	next      time.Time
	interval  time.Duration
	countdown int

	// Registry instruments, nil when Options.Metrics is nil. Counters
	// carry deltas since the previous emit so they aggregate correctly
	// across properties sharing one registry.
	mStored, mMatched, mTrans, mReduced *obs.Counter
	gStored, gDepth, gHeap              *obs.Gauge
	lastStored, lastMatched, lastTrans  int
	lastReduced                         int

	// span is the phase's trace span, nil when Options.Tracer is nil.
	// frontier carries the latest BFS level size into snapshots.
	span     *tracing.Span
	frontier int
}

// newMeter arms a meter for one search phase; nil when no Progress
// callback, metrics registry, or tracer is configured.
func (c *Checker) newMeter(phase string) *meter {
	if c.opts.Progress == nil && c.opts.Metrics == nil && c.opts.Tracer == nil {
		return nil
	}
	interval := c.opts.ProgressInterval
	if interval <= 0 {
		interval = time.Second
	}
	now := time.Now()
	m := &meter{
		opts:     &c.opts,
		phase:    phase,
		start:    now,
		next:     now, // first tick emits immediately, then every interval
		interval: interval,
		// Countdown of 1 makes the first stored state emit a snapshot, so
		// even sub-interval searches produce one progress line.
		countdown: 1,
	}
	if reg := c.opts.Metrics; reg != nil {
		m.mStored = reg.Counter(obs.Labels("checker_states_stored_total", "phase", phase))
		m.mMatched = reg.Counter(obs.Labels("checker_states_matched_total", "phase", phase))
		m.mTrans = reg.Counter(obs.Labels("checker_transitions_total", "phase", phase))
		m.mReduced = reg.Counter(obs.Labels("checker_reduced_states_total", "phase", phase))
		m.gStored = reg.Gauge(obs.Labels("checker_states_stored", "phase", phase))
		m.gDepth = reg.Gauge(obs.Labels("checker_depth", "phase", phase))
		m.gHeap = reg.Gauge("checker_heap_alloc_bytes")
	}
	if tr := c.opts.Tracer; tr != nil {
		ctx := c.opts.Context
		if ctx == nil {
			ctx = context.Background()
		}
		_, m.span = tr.StartSpan(ctx, "checker:"+phase)
	}
	return m
}

// tick is called once per stored state; it emits a snapshot when the
// interval has elapsed. Cheap when not due: one decrement and compare.
func (m *meter) tick(st *Stats, depth int) { m.tickN(st, depth, 1) }

// tickN credits n stored states at once — the parallel engine calls it
// at each level barrier instead of per state, so workers never touch
// the meter.
func (m *meter) tickN(st *Stats, depth, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.countdown -= n
	if m.countdown > 0 {
		return
	}
	m.countdown = meterCheckEvery
	now := time.Now()
	if now.Before(m.next) {
		return
	}
	m.next = now.Add(m.interval)
	m.emit(st, depth, now, false)
}

// level is tickN plus trace bookkeeping: the parallel engines call it at
// each level barrier with the frontier size, which becomes a span event
// (the per-level timeline in the Chrome view) and the Frontier field of
// subsequent snapshots.
func (m *meter) level(st *Stats, depth, frontier, n int) {
	if m == nil {
		return
	}
	m.frontier = frontier
	if m.span != nil {
		m.span.AddEvent("level",
			tracing.A("depth", strconv.Itoa(depth)),
			tracing.A("frontier", strconv.Itoa(frontier)),
			tracing.A("stored", strconv.Itoa(st.StatesStored)))
	}
	m.tickN(st, depth, n)
}

// finish emits the final snapshot and ends the phase span; call it
// (usually deferred) on every exit path of a search.
func (m *meter) finish(st *Stats, depth int) {
	if m == nil {
		return
	}
	m.emit(st, depth, time.Now(), true)
	if m.span != nil {
		m.span.SetAttr("states_stored", strconv.Itoa(st.StatesStored))
		m.span.SetAttr("states_matched", strconv.Itoa(st.StatesMatched))
		m.span.SetAttr("transitions", strconv.Itoa(st.Transitions))
		m.span.SetAttr("max_depth", strconv.Itoa(depth))
		if st.Truncated {
			m.span.SetAttr("truncated", "true")
		}
		m.span.End()
	}
}

func (m *meter) emit(st *Stats, depth int, now time.Time, final bool) {
	elapsed := now.Sub(m.start)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	p := Progress{
		Phase:         m.phase,
		StatesStored:  st.StatesStored,
		StatesMatched: st.StatesMatched,
		Transitions:   st.Transitions,
		Depth:         depth,
		Reduced:       st.Reduced,
		Frontier:      m.frontier,
		Elapsed:       elapsed,
		HeapAlloc:     mem.HeapAlloc,
		Final:         final,
	}
	if elapsed > 0 {
		p.StatesPerSec = float64(st.StatesStored) / elapsed.Seconds()
	}
	m.mStored.Add(int64(st.StatesStored - m.lastStored))
	m.mMatched.Add(int64(st.StatesMatched - m.lastMatched))
	m.mTrans.Add(int64(st.Transitions - m.lastTrans))
	m.mReduced.Add(int64(st.Reduced - m.lastReduced))
	m.lastStored, m.lastMatched = st.StatesStored, st.StatesMatched
	m.lastTrans, m.lastReduced = st.Transitions, st.Reduced
	m.gStored.Set(int64(st.StatesStored))
	m.gDepth.Set(int64(depth))
	m.gHeap.Set(int64(mem.HeapAlloc))
	if m.opts.Progress != nil {
		m.opts.Progress(p)
	}
}

// withPhaseLabel runs fn with a runtime/pprof label identifying the
// exploration phase, so CPU profiles attribute time to safety versus
// liveness versus partial-order-reduction work.
func withPhaseLabel(phase string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("pnp_phase", phase), func(context.Context) {
		fn()
	})
}
