package checker

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pnp/internal/model"
)

// parWorkerCounts are the worker counts every determinism test sweeps.
var parWorkerCounts = []int{1, 2, 8}

func statsEqualIgnoringElapsed(a, b Stats) bool {
	a.Elapsed, b.Elapsed = 0, 0
	// Memory-accounting fields vary with storage mode, allocator growth,
	// and budget — they are observability, not search semantics.
	a.VisitedBytes, b.VisitedBytes = 0, 0
	a.SpilledStates, b.SpilledStates = 0, 0
	return a == b
}

// parOKSrc has a moderately branchy but violation-free state space.
const parOKSrc = `
byte x;
chan c = [2] of { byte };
active proctype P() {
	byte i;
	do
	:: i < 4 -> c!i; i = i + 1
	:: else -> break
	od
}
active proctype Q() {
	byte v;
	byte n;
	do
	:: c?v -> x = v; n = n + 1
	:: n >= 4 -> break
	od
}`

func TestParallelSafetyDeterministicAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name string
		src  string
		inv  string // optional invariant source
		kind ViolationKind
	}{
		{"ok", parOKSrc, "", NoViolation},
		{"assertion", `
byte x;
active proctype P() { x = 1 }
active proctype Q() { x == 1 -> assert(x == 0) }`, "", Assertion},
		{"deadlock", `
chan a = [0] of { byte };
chan b = [0] of { byte };
active proctype P() { byte x; a?x; b!1 }
active proctype Q() { byte y; b?y; a!1 }`, "", Deadlock},
		{"invariant", `
byte x;
active proctype P() { x = 1; x = 2; x = 3 }`, "x < 3", InvariantViolation},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var first *Result
			for _, w := range parWorkerCounts {
				s := sysFromSource(t, tc.src)
				opts := Options{Workers: w}
				if tc.inv != "" {
					inv, err := InvariantFromSource(s.Prog, "inv", tc.inv)
					if err != nil {
						t.Fatal(err)
					}
					opts.Invariants = []Invariant{inv}
				}
				res := New(s, opts).CheckSafety()
				if (tc.kind == NoViolation) != res.OK {
					t.Fatalf("workers=%d: unexpected verdict %s", w, res.Summary())
				}
				if !res.OK && res.Kind != tc.kind {
					t.Fatalf("workers=%d: kind %s, want %s", w, res.Kind, tc.kind)
				}
				if first == nil {
					first = res
					continue
				}
				if res.Stats.StatesStored != first.Stats.StatesStored ||
					res.Stats.StatesMatched != first.Stats.StatesMatched ||
					res.Stats.Transitions != first.Stats.Transitions ||
					res.Stats.MaxDepth != first.Stats.MaxDepth {
					t.Errorf("workers=%d: stats diverge: %+v vs %+v", w, res.Stats, first.Stats)
				}
				if (res.Trace == nil) != (first.Trace == nil) {
					t.Fatalf("workers=%d: trace presence differs", w)
				}
				if res.Trace != nil {
					if res.Trace.Len() != first.Trace.Len() {
						t.Errorf("workers=%d: counterexample length %d vs %d",
							w, res.Trace.Len(), first.Trace.Len())
					}
					if res.Trace.String() != first.Trace.String() {
						t.Errorf("workers=%d: counterexample differs:\n%s\nvs\n%s",
							w, res.Trace, first.Trace)
					}
				}
			}
		})
	}
}

// On a violation-free model the parallel engine and the sequential BFS
// explore exactly the same set of states.
func TestParallelSafetyStatsMatchSequentialBFS(t *testing.T) {
	seq := New(sysFromSource(t, parOKSrc), Options{BFS: true}).CheckSafety()
	par := New(sysFromSource(t, parOKSrc), Options{Workers: 2}).CheckSafety()
	if !seq.OK || !par.OK {
		t.Fatalf("expected OK: seq=%s par=%s", seq.Summary(), par.Summary())
	}
	if seq.Stats.StatesStored != par.Stats.StatesStored ||
		seq.Stats.StatesMatched != par.Stats.StatesMatched ||
		seq.Stats.Transitions != par.Stats.Transitions ||
		seq.Stats.MaxDepth != par.Stats.MaxDepth {
		t.Errorf("stats diverge from sequential BFS: %+v vs %+v", par.Stats, seq.Stats)
	}
}

// An assertion reached only by BFS-shortest paths: the parallel engine's
// counterexample must be as short as the sequential BFS one.
func TestParallelShortestCounterexample(t *testing.T) {
	src := `
byte x;
active proctype P() {
	do
	:: x < 6 -> x = x + 1
	:: x == 3 -> assert(false)
	od
}`
	seq := New(sysFromSource(t, src), Options{BFS: true}).CheckSafety()
	if seq.OK || seq.Trace == nil {
		t.Fatalf("sequential BFS should find the assertion: %s", seq.Summary())
	}
	for _, w := range parWorkerCounts {
		par := New(sysFromSource(t, src), Options{Workers: w}).CheckSafety()
		if par.OK || par.Trace == nil {
			t.Fatalf("workers=%d should find the assertion: %s", w, par.Summary())
		}
		if par.Trace.Len() != seq.Trace.Len() {
			t.Errorf("workers=%d: counterexample length %d, sequential BFS %d",
				w, par.Trace.Len(), seq.Trace.Len())
		}
	}
}

func TestParallelMaxStatesClamp(t *testing.T) {
	for _, w := range []int{1, 4} {
		res := New(sysFromSource(t, parOKSrc), Options{Workers: w, MaxStates: 10}).CheckSafety()
		if res.OK || res.Kind != SearchLimit || !res.Stats.Truncated {
			t.Fatalf("workers=%d: expected SearchLimit, got %s", w, res.Summary())
		}
		if res.Stats.StatesStored != 11 {
			t.Errorf("workers=%d: StatesStored = %d, want MaxStates+1 = 11", w, res.Stats.StatesStored)
		}
	}
}

func TestParallelReachabilityWitness(t *testing.T) {
	s := sysFromSource(t, parOKSrc)
	target, err := s.Prog.CompileGlobalExpr("x == 2")
	if err != nil {
		t.Fatal(err)
	}
	seq := New(s, Options{}).CheckReachable(target)
	if !seq.OK || seq.Trace == nil {
		t.Fatalf("sequential reachability failed: %s", seq.Summary())
	}
	var first *Result
	for _, w := range parWorkerCounts {
		res := New(sysFromSource(t, parOKSrc), Options{Workers: w}).CheckReachable(target)
		if !res.OK || res.Trace == nil {
			t.Fatalf("workers=%d: target not reached: %s", w, res.Summary())
		}
		if res.Trace.Len() != seq.Trace.Len() {
			t.Errorf("workers=%d: witness length %d, sequential %d", w, res.Trace.Len(), seq.Trace.Len())
		}
		if first == nil {
			first = res
			continue
		}
		if res.Stats.StatesStored != first.Stats.StatesStored {
			t.Errorf("workers=%d: StatesStored %d vs %d", w, res.Stats.StatesStored, first.Stats.StatesStored)
		}
		if res.Trace.String() != first.Trace.String() {
			t.Errorf("workers=%d: witness differs across worker counts", w)
		}
	}
}

func TestParallelUnreachableTarget(t *testing.T) {
	s := sysFromSource(t, parOKSrc)
	target, err := s.Prog.CompileGlobalExpr("x == 200")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{Workers: 4}).CheckReachable(target)
	if res.OK {
		t.Fatalf("x == 200 should be unreachable: %s", res.Summary())
	}
	seq := New(sysFromSource(t, parOKSrc), Options{}).CheckReachable(target)
	if res.Stats.StatesStored != seq.Stats.StatesStored {
		t.Errorf("exhaustive reachability stored %d states, sequential %d",
			res.Stats.StatesStored, seq.Stats.StatesStored)
	}
}

func TestParallelBitstateVerifies(t *testing.T) {
	res := New(sysFromSource(t, parOKSrc), Options{Workers: 4, Bitstate: true, BitstateBits: 20}).CheckSafety()
	if !res.OK {
		t.Fatalf("bitstate parallel search should verify: %s", res.Summary())
	}
	if res.Stats.StatesStored == 0 {
		t.Error("bitstate search stored no states")
	}
}

// Workers is a documented no-op for liveness: verdict, stats, and
// counterexample must be identical at any worker count.
func TestLivenessWorkersNoOp(t *testing.T) {
	src := `
byte x;
active proctype P() {
	do
	:: x = 0
	:: x = 2
	od
}`
	var first *Result
	for _, w := range []int{0, 1, 8} {
		s := sysFromSource(t, src)
		p := props(t, s.Prog, map[string]string{"done": "x == 2"})
		res := New(s, Options{Workers: w}).CheckLTL("<> done", p)
		if res.OK || res.Kind != AcceptanceCycle {
			t.Fatalf("workers=%d: expected acceptance cycle, got %s", w, res.Summary())
		}
		if first == nil {
			first = res
			continue
		}
		if !statsEqualIgnoringElapsed(res.Stats, first.Stats) {
			t.Errorf("workers=%d: liveness stats changed: %+v vs %+v", w, res.Stats, first.Stats)
		}
		if res.Trace.String() != first.Trace.String() {
			t.Errorf("workers=%d: liveness counterexample changed", w)
		}
	}
}

// Partial-order reduction and unreached reporting need the sequential
// DFS; Workers must fall back rather than change those verdicts.
func TestParallelFallsBackForPORAndUnreached(t *testing.T) {
	base := New(sysFromSource(t, parOKSrc), Options{PartialOrder: true}).CheckSafety()
	par := New(sysFromSource(t, parOKSrc), Options{PartialOrder: true, Workers: 8}).CheckSafety()
	if !statsEqualIgnoringElapsed(par.Stats, base.Stats) {
		t.Errorf("POR run changed under Workers: %+v vs %+v", par.Stats, base.Stats)
	}
	ru := New(sysFromSource(t, parOKSrc), Options{ReportUnreached: true, Workers: 8}).CheckSafety()
	if !ru.OK {
		t.Fatalf("unreached-reporting run failed: %s", ru.Summary())
	}
}

func TestParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New(sysFromSource(t, parOKSrc), Options{Workers: 4, Context: ctx}).CheckSafety()
	if res.OK || res.Kind != Canceled || !res.Stats.Truncated {
		t.Fatalf("expected Canceled, got %s", res.Summary())
	}
}

// The AG-EF search must stop within one state of MaxStates and report
// the same clamped count as the other searches (satellite fix).
func TestEventuallyReachableMaxStatesClamp(t *testing.T) {
	s := sysFromSource(t, parOKSrc)
	target, err := s.Prog.CompileGlobalExpr("x == 0")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{MaxStates: 5}).CheckEventuallyReachable(target)
	if res.OK || res.Kind != SearchLimit || !res.Stats.Truncated {
		t.Fatalf("expected SearchLimit, got %s", res.Summary())
	}
	if res.Stats.StatesStored != 6 {
		t.Errorf("StatesStored = %d, want MaxStates+1 = 6", res.Stats.StatesStored)
	}
}

// --- sharded visited set ---

func encOf(i int) []byte {
	return []byte(fmt.Sprintf("state-%d-%s", i, "padding-to-make-keys-nontrivial"))
}

func TestShardedSetExact(t *testing.T) {
	s := newShardedSet(nil)
	for i := 0; i < 1000; i++ {
		enc := encOf(i)
		if s.seen(model.Hash64(enc), enc, nil) {
			t.Fatalf("fresh key %d reported seen", i)
		}
	}
	for i := 0; i < 1000; i++ {
		enc := encOf(i)
		if !s.seen(model.Hash64(enc), enc, nil) {
			t.Fatalf("stored key %d reported unseen", i)
		}
	}
	if s.size() != 1000 {
		t.Fatalf("size = %d, want 1000", s.size())
	}
	if s.bytes() <= 0 {
		t.Fatalf("bytes = %d, want > 0", s.bytes())
	}
}

// Concurrent inserts of overlapping key ranges must store each distinct
// key exactly once (run with -race).
func TestShardedSetConcurrentExactCount(t *testing.T) {
	s := newShardedSet(nil)
	const keys, workers = 2000, 8
	var wins [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []byte
			for i := 0; i < keys; i++ {
				buf = append(buf[:0], encOf(i)...)
				if !s.seen(model.Hash64(buf), buf, nil) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if s.size() != keys {
		t.Fatalf("size = %d, want %d", s.size(), keys)
	}
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != keys {
		t.Fatalf("%d first-insert wins across workers, want %d", total, keys)
	}
}

func TestParBitstateSetMatchesSequentialBits(t *testing.T) {
	seq := newBitstateSet(14)
	par := newParBitstateSet(14, nil)
	for i := 0; i < 500; i++ {
		enc := encOf(i)
		if got, want := par.seen(model.Hash64(enc), enc, nil), seq.seen(string(enc)); got != want {
			t.Fatalf("key %d: parallel bitstate %v, sequential %v", i, got, want)
		}
	}
	if par.size() != seq.size() {
		t.Fatalf("sizes diverge: %d vs %d", par.size(), seq.size())
	}
}

// benchComponentStates builds n distinct states with the component
// structure of a realistic composition (several processes and channels)
// where consecutive states differ in one or two components — the
// neighbor structure collapse compression exploits. Returns the shape
// plus each state's encoding, fingerprint, and section ends.
func benchComponentStates(n int) (shape *model.State, encs [][]byte, fps []uint64, endss [][]int) {
	mk := func(i int) *model.State {
		st := &model.State{
			PCs:     []int32{int32(i % 7), int32(i / 7 % 5), 3, 1, 2, 0},
			Globals: []int64{int64(i % 3), 42, 7, int64(i % 2), 0, 1, 9, 4},
			Locals: [][]int64{
				{int64(i % 11), 5}, {2, 3}, {int64(i / 11 % 4), 0},
				{1, 1}, {0, 8}, {6, int64(i / 44 % 3)},
			},
			Chans: [][]int64{
				{1, 2, 3}, {int64(i % 5)}, {}, {4, 4},
			},
			Atomic: -1,
		}
		return st
	}
	shape = mk(0)
	encs = make([][]byte, n)
	fps = make([]uint64, n)
	endss = make([][]int, n)
	for i := 0; i < n; i++ {
		st := mk(i)
		enc, ends := st.AppendComponentKeys(nil, nil)
		encs[i], endss[i] = enc, ends
		fps[i] = model.Hash64(enc)
	}
	return shape, encs, fps, endss
}

func BenchmarkShardedVisited(b *testing.B) {
	shape, encs, fps, endss := benchComponentStates(4096)
	reportBytes := func(b *testing.B, s parVisited) {
		b.ReportMetric(float64(s.bytes())/float64(len(encs)), "bytes/state")
	}
	b.Run("MapSet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := newMapSet()
			for j := range encs {
				s.seen(string(encs[j]))
				s.seen(string(encs[j]))
			}
		}
	})
	b.Run("Exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := newShardedSet(nil)
			for j := range encs {
				s.seen(fps[j], encs[j], endss[j])
				s.seen(fps[j], encs[j], endss[j])
			}
			reportBytes(b, s)
		}
	})
	b.Run("Collapse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := newCollapseSet(shape, nil)
			for j := range encs {
				s.seen(fps[j], encs[j], endss[j])
				s.seen(fps[j], encs[j], endss[j])
			}
			reportBytes(b, s)
		}
	})
	b.Run("ExactParallel", func(b *testing.B) {
		b.ReportAllocs()
		const workers = 4
		for i := 0; i < b.N; i++ {
			s := newShardedSet(nil)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := w; j < len(encs); j += workers {
						s.seen(fps[j], encs[j], endss[j])
						s.seen(fps[j], encs[j], endss[j])
					}
				}(w)
			}
			wg.Wait()
		}
	})
	b.Run("CollapseParallel", func(b *testing.B) {
		b.ReportAllocs()
		const workers = 4
		for i := 0; i < b.N; i++ {
			s := newCollapseSet(shape, nil)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := w; j < len(encs); j += workers {
						s.seen(fps[j], encs[j], endss[j])
						s.seen(fps[j], encs[j], endss[j])
					}
				}(w)
			}
			wg.Wait()
		}
	})
}
