package checker

import (
	"strings"
	"testing"
	"time"

	"pnp/internal/obs"
)

// progressSource has a few hundred states so the meter's countdown
// fires more than once.
const progressSource = `
byte a, b, c;
active proctype P() {
	do
	:: a < 5 -> a = a + 1
	:: else -> break
	od
}
active proctype Q() {
	do
	:: b < 5 -> b = b + 1
	:: else -> break
	od
}
active proctype R() {
	do
	:: c < 5 -> c = c + 1
	:: else -> break
	od
}`

func TestProgressCallbackDFS(t *testing.T) {
	s := sysFromSource(t, progressSource)
	var snaps []Progress
	res := New(s, Options{
		IgnoreDeadlock:   true,
		Progress:         func(p Progress) { snaps = append(snaps, p) },
		ProgressInterval: time.Nanosecond,
	}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK: %s", res.Summary())
	}
	if len(snaps) < 2 {
		t.Fatalf("want at least one periodic + one final snapshot, got %d", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Error("last snapshot not marked Final")
	}
	for _, p := range snaps[:len(snaps)-1] {
		if p.Final {
			t.Error("non-last snapshot marked Final")
		}
	}
	if last.Phase != "safety-dfs" {
		t.Errorf("phase = %q, want safety-dfs", last.Phase)
	}
	if last.StatesStored != res.Stats.StatesStored {
		t.Errorf("final snapshot states = %d, want %d", last.StatesStored, res.Stats.StatesStored)
	}
	if last.StatesPerSec <= 0 || last.Elapsed <= 0 {
		t.Errorf("rate/elapsed not populated: %+v", last)
	}
	if last.HeapAlloc == 0 {
		t.Error("HeapAlloc not populated")
	}
	prev := 0
	for _, p := range snaps {
		if p.StatesStored < prev {
			t.Errorf("states stored not monotone: %d after %d", p.StatesStored, prev)
		}
		prev = p.StatesStored
	}
}

func TestProgressCallbackBFSPhase(t *testing.T) {
	s := sysFromSource(t, progressSource)
	var phases []string
	res := New(s, Options{
		IgnoreDeadlock:   true,
		BFS:              true,
		Progress:         func(p Progress) { phases = append(phases, p.Phase) },
		ProgressInterval: time.Nanosecond,
	}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK: %s", res.Summary())
	}
	if len(phases) == 0 || phases[0] != "safety-bfs" {
		t.Errorf("phases = %v, want safety-bfs", phases)
	}
}

func TestProgressMetricsRegistry(t *testing.T) {
	s := sysFromSource(t, progressSource)
	reg := obs.NewRegistry()
	res := New(s, Options{IgnoreDeadlock: true, Metrics: reg}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK: %s", res.Summary())
	}
	stored := reg.Counter(obs.Labels("checker_states_stored_total", "phase", "safety-dfs")).Value()
	if stored != int64(res.Stats.StatesStored) {
		t.Errorf("metric states stored = %d, want %d", stored, res.Stats.StatesStored)
	}
	trans := reg.Counter(obs.Labels("checker_transitions_total", "phase", "safety-dfs")).Value()
	if trans != int64(res.Stats.Transitions) {
		t.Errorf("metric transitions = %d, want %d", trans, res.Stats.Transitions)
	}
	if reg.Gauge("checker_heap_alloc_bytes").Value() == 0 {
		t.Error("heap gauge not set")
	}
}

func TestProgressLTLPhase(t *testing.T) {
	s := sysFromSource(t, progressSource)
	props, err := PropsFromSource(s.Prog, map[string]string{"done": "a == 5"})
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	res := New(s, Options{
		Progress:         func(p Progress) { phases = append(phases, p.Phase) },
		ProgressInterval: time.Nanosecond,
	}).CheckLTL("<> done", props)
	if !res.OK {
		t.Fatalf("expected <>done to hold: %s", res.Summary())
	}
	if len(phases) == 0 || phases[0] != "liveness-ndfs" {
		t.Errorf("phases = %v, want liveness-ndfs", phases)
	}
}

func TestSummaryIncludesElapsedAndReduced(t *testing.T) {
	r := &Result{OK: true}
	r.Stats.StatesStored = 10
	r.Stats.Transitions = 20
	r.Stats.MaxDepth = 5
	if strings.Contains(r.Summary(), " in ") {
		t.Errorf("zero elapsed should not be printed: %q", r.Summary())
	}
	r.Stats.Elapsed = 1500 * time.Microsecond
	r.Stats.Reduced = 3
	s := r.Summary()
	if !strings.Contains(s, "3 reduced") {
		t.Errorf("Summary missing reduced count: %q", s)
	}
	if !strings.Contains(s, " in 2ms") {
		t.Errorf("Summary missing elapsed: %q", s)
	}
	// Sub-millisecond runs surface microseconds instead of "0s".
	r.Stats.Elapsed = 250 * time.Microsecond
	if !strings.Contains(r.Summary(), "µs") {
		t.Errorf("sub-ms elapsed collapsed: %q", r.Summary())
	}
	// Failures carry elapsed too.
	f := &Result{Kind: Assertion, Message: "assertion violated"}
	f.Stats.Elapsed = 2 * time.Millisecond
	if !strings.Contains(f.Summary(), " in 2ms") {
		t.Errorf("failure Summary missing elapsed: %q", f.Summary())
	}
}
