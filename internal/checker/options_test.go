package checker

import "testing"

// TestNormalizedMergesSpellings: nested Storage values propagate to the
// deprecated flat aliases and vice versa, and after normalization both
// spellings agree.
func TestNormalizedMergesSpellings(t *testing.T) {
	nested := Options{Storage: StorageOptions{
		Visited: VisitedCollapse, MemLimit: 1 << 20, SpillDir: "/tmp/x",
		Bitstate: true, BitstateBits: 24,
	}}.Normalized()
	flat := Options{
		Visited: VisitedCollapse, MemLimit: 1 << 20, SpillDir: "/tmp/x",
		Bitstate: true, BitstateBits: 24,
	}.Normalized()
	if nested.Storage != flat.Storage {
		t.Fatalf("nested %+v != flat %+v after Normalized", nested.Storage, flat.Storage)
	}
	for _, o := range []Options{nested, flat} {
		if o.Visited != o.Storage.Visited || o.MemLimit != o.Storage.MemLimit ||
			o.SpillDir != o.Storage.SpillDir || o.Bitstate != o.Storage.Bitstate ||
			o.BitstateBits != o.Storage.BitstateBits {
			t.Fatalf("flat aliases out of sync with Storage: %+v", o)
		}
	}
}

// TestNormalizedFlatOverridesNested: overlay code that mutates a flat
// field on an already-normalized Options (the verifyd per-job override
// path) must win over the stale nested copy.
func TestNormalizedFlatOverridesNested(t *testing.T) {
	o := Options{Storage: StorageOptions{Visited: VisitedCollapse, MemLimit: 100}}.Normalized()
	o.Visited = VisitedExact
	o.MemLimit = 200
	o = o.Normalized()
	if o.Storage.Visited != VisitedExact || o.Storage.MemLimit != 200 {
		t.Fatalf("flat edits must override nested: %+v", o.Storage)
	}
}

// TestNormalizedDurabilityAlias: Durability and the legacy Checkpoint
// pointer are merged, with Checkpoint winning when both are set — the
// per-property clone-and-reassign path must not be shadowed.
func TestNormalizedDurabilityAlias(t *testing.T) {
	d := &DurabilityOptions{Dir: "/tmp/ckpt"}
	o := Options{Durability: d}.Normalized()
	if o.Checkpoint != d {
		t.Fatal("Durability must propagate to the legacy Checkpoint field")
	}
	c := &CheckpointOptions{Dir: "/tmp/other"}
	o.Checkpoint = c
	o = o.Normalized()
	if o.Durability != c || o.Checkpoint != c {
		t.Fatal("an explicitly set Checkpoint must win over the stale Durability alias")
	}
}

// TestNormalizedIdempotent: normalizing twice is the same as once
// (checker.New normalizes again after callers may have).
func TestNormalizedIdempotent(t *testing.T) {
	o := Options{Visited: VisitedCollapse, Storage: StorageOptions{MemLimit: 42}}.Normalized()
	if again := o.Normalized(); again.Storage != o.Storage ||
		again.Visited != o.Visited || again.MemLimit != o.MemLimit {
		t.Fatalf("Normalized not idempotent: %+v vs %+v", again, o)
	}
}
