package checker

import (
	"testing"
)

// porPair runs the same source with and without partial-order reduction.
func porPair(t *testing.T, src string, opts Options) (full, por *Result) {
	t.Helper()
	full = New(sysFromSource(t, src), opts).CheckSafety()
	optsPOR := opts
	optsPOR.PartialOrder = true
	por = New(sysFromSource(t, src), optsPOR).CheckSafety()
	return full, por
}

// TestPORPreservesVerdicts: across a battery of systems, reduction must
// never change the outcome.
func TestPORPreservesVerdicts(t *testing.T) {
	sources := []string{
		// Independent local counters: massive reduction possible.
		`active proctype A() { byte x; x = 1; x = 2; x = 3 }
		 active proctype B() { byte y; y = 1; y = 2; y = 3 }`,
		// Shared global: visible interleavings preserved.
		`byte g;
		 active proctype A() { g = g + 1 }
		 active proctype B() { g = g + 1 }`,
		// Assertion violation must still be found.
		`byte g;
		 active proctype A() { byte x; x = 1; x = 2; g = 1 }
		 active proctype B() { g == 1 -> assert(false) }`,
		// Deadlock must still be found.
		`chan c = [0] of { byte };
		 active proctype A() { byte x, l; l = 1; c?x }`,
		// Local spin loop with an assert elsewhere (cycle proviso).
		`byte g;
		 active proctype Spin() { byte x; end: do :: x = 1 - x od }
		 active proctype B() { g = 1; assert(g == 0) }`,
		// Rendezvous exchange.
		`chan c = [0] of { byte };
		 byte got;
		 active proctype S() { byte i; i = 7; c!i }
		 active proctype R() { c?got }`,
	}
	for i, src := range sources {
		full, por := porPair(t, src, Options{})
		if full.OK != por.OK || full.Kind != por.Kind {
			t.Errorf("source %d: verdicts differ: full=(%v,%s) por=(%v,%s)",
				i, full.OK, full.Kind, por.OK, por.Kind)
		}
		if por.Stats.StatesStored > full.Stats.StatesStored {
			t.Errorf("source %d: POR stored MORE states (%d > %d)",
				i, por.Stats.StatesStored, full.Stats.StatesStored)
		}
	}
}

// TestPORReducesIndependentInterleavings: two processes doing purely
// local work interleave exponentially without reduction and linearly
// with it.
func TestPORReducesIndependentInterleavings(t *testing.T) {
	src := `
active proctype A() { byte x; x = 1; x = 2; x = 3; x = 4; x = 5 }
active proctype B() { byte y; y = 1; y = 2; y = 3; y = 4; y = 5 }
active proctype C() { byte z; z = 1; z = 2; z = 3; z = 4; z = 5 }`
	full, por := porPair(t, src, Options{})
	if !full.OK || !por.OK {
		t.Fatalf("full=%s por=%s", full.Summary(), por.Summary())
	}
	if por.Stats.StatesStored >= full.Stats.StatesStored/10 {
		t.Errorf("expected >=10x reduction, got %d vs %d states",
			por.Stats.StatesStored, full.Stats.StatesStored)
	}
	if por.Stats.Reduced == 0 {
		t.Error("no reduced expansions recorded")
	}
}

// TestPORInvariantViolationStillFound: invariants read globals, local
// moves don't write them, so every global valuation stays reachable.
func TestPORInvariantViolationStillFound(t *testing.T) {
	src := `
byte g;
active proctype A() { byte x; x = 1; g = 1; x = 2; g = 2 }
active proctype B() { byte y; y = 1; y = 2 }`
	s := sysFromSource(t, src)
	inv, err := InvariantFromSource(s.Prog, "small", "g < 2")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{PartialOrder: true, Invariants: []Invariant{inv}}).CheckSafety()
	if res.OK || res.Kind != InvariantViolation {
		t.Fatalf("POR missed the invariant violation: %s", res.Summary())
	}
}

// TestPORPeterson: the classic protocol still verifies, with fewer
// states.
func TestPORPeterson(t *testing.T) {
	src := `
bool flag0, flag1;
byte turn, incrit;
active proctype P0() {
	byte local;
	do
	:: local = 1 - local;
	   flag0 = 1; turn = 1;
	   (flag1 == 0 || turn == 0);
	   incrit = incrit + 1; assert(incrit == 1); incrit = incrit - 1;
	   flag0 = 0
	od
}
active proctype P1() {
	byte local;
	do
	:: local = 1 - local;
	   flag1 = 1; turn = 0;
	   (flag0 == 0 || turn == 1);
	   incrit = incrit + 1; assert(incrit == 1); incrit = incrit - 1;
	   flag1 = 0
	od
}`
	full, por := porPair(t, src, Options{IgnoreDeadlock: true})
	if !full.OK || !por.OK {
		t.Fatalf("full=%s por=%s", full.Summary(), por.Summary())
	}
	if por.Stats.StatesStored > full.Stats.StatesStored {
		t.Errorf("POR did not reduce: %d vs %d", por.Stats.StatesStored, full.Stats.StatesStored)
	}
}
