package checker

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"pnp/internal/model"
	"pnp/internal/obs"
)

// The spill tier keeps searches alive past Options.MemLimit: when the
// in-memory visited set exceeds the budget at a level barrier, every
// entry is flushed to an immutable fingerprint-indexed segment file
// under Options.SpillDir and the in-memory tier starts over (collapse
// side tables survive, so compression keeps working). Lookups probe the
// segments first — read-only, lock-free, through a shared mmap — and
// fall through to the in-memory set, so membership stays exact and
// verdicts and StatesStored match the unbudgeted run; the search
// degrades to disk speed instead of dying.
//
// Segment layout (same CRC framing as checkpoint files — [u32 payload
// length][u32 CRC-32 (IEEE) of payload] — so bit rot is detected, and
// the same tmp+fsync+rename protocol, so a file that exists is
// complete):
//
//	8-byte magic "PNPSPIL1"
//	framed 'H' JSON header {count}
//	[u32 blob length][u32 blob CRC]  blob: count × [uvarint len][encoding]
//	[u32 index length][u32 index CRC]
//	index: count × [fp u64 LE][blob offset u64 LE], sorted by fp
//
// The blob is streamed in drain order and its frame header patched
// afterwards; only the 16-byte-per-entry index is buffered and sorted
// in memory during a spill.
const spillMagic = "PNPSPIL1"

const spillSectionHeader = 'H'

type spillHeader struct {
	Count int `json:"count"`
}

// spillSet wraps an in-memory visited set with the segment tier.
// Segments are only appended at level barriers (maybeSpill), which the
// runner serializes, so workers inside a level read an immutable
// segment list without locks.
type spillSet struct {
	mem     visitedDrainer
	limit   int64
	dir     string // user-chosen parent ("" = system temp)
	runDir  string // per-search segment directory, created lazily
	segs    []*spillSegment
	spilled atomic.Int64
	failed  bool // a failed spill disables the tier; memory keeps growing
	cSpill  *obs.Counter
}

func newSpillSet(mem visitedDrainer, limit int64, dir string, spilled *obs.Counter) *spillSet {
	return &spillSet{mem: mem, limit: limit, dir: dir, cSpill: spilled}
}

func (s *spillSet) seen(fp uint64, enc []byte, ends []int) bool {
	for _, seg := range s.segs {
		if seg.contains(fp, enc) {
			return true
		}
	}
	return s.mem.seen(fp, enc, ends)
}

// size is the total membership: spilled entries plus the in-memory tier.
func (s *spillSet) size() int { return int(s.spilled.Load()) + s.mem.size() }

// bytes reports only resident memory — segment files are the point of
// the tier and do not count against the budget. The mmap'd index/blob
// pages are file-backed and reclaimable, so they are excluded too.
func (s *spillSet) bytes() int64 { return s.mem.bytes() }

// maybeSpill flushes the in-memory tier to a new segment when it
// exceeds the budget. Called at level barriers only. A spill that fails
// (unwritable directory, corrupt segment on re-open) deletes its
// partial output and permanently falls back to in-memory growth: the
// search continues, just without the budget.
func (s *spillSet) maybeSpill() {
	if s.failed || s.mem.bytes() <= s.limit {
		return
	}
	n := s.mem.size()
	if n == 0 {
		return
	}
	if s.runDir == "" {
		parent := s.dir
		if parent != "" {
			if err := os.MkdirAll(parent, 0o755); err != nil {
				s.failed = true
				return
			}
		}
		d, err := os.MkdirTemp(parent, "pnp-spill-*")
		if err != nil {
			s.failed = true
			return
		}
		s.runDir = d
	}
	path := filepath.Join(s.runDir, fmt.Sprintf("seg-%06d.seg", len(s.segs)))
	if err := writeSpillSegment(path, n, s.mem.forEachEncoding); err != nil {
		os.Remove(path)
		s.failed = true
		return
	}
	seg, err := openSpillSegment(path)
	if err != nil {
		// The segment we just wrote does not validate: treat it as lost
		// and keep the entries in memory rather than trusting it.
		os.Remove(path)
		s.failed = true
		return
	}
	s.segs = append(s.segs, seg)
	s.mem.reset()
	s.spilled.Add(int64(n))
	s.cSpill.Add(int64(n))
}

// forEachEncoding streams the segments and then the in-memory tier, so
// checkpoints capture the full membership.
func (s *spillSet) forEachEncoding(fn func(enc []byte)) {
	for _, seg := range s.segs {
		seg.forEach(fn)
	}
	s.mem.forEachEncoding(fn)
}

// reset drops both tiers (checkpoint-restore replays into a fresh set).
func (s *spillSet) reset() {
	s.mem.reset()
	s.closeSegs()
	s.spilled.Store(0)
	s.failed = false
}

func (s *spillSet) closeSegs() {
	for _, seg := range s.segs {
		seg.close()
	}
	s.segs = nil
	if s.runDir != "" {
		os.RemoveAll(s.runDir)
		s.runDir = ""
	}
}

// close releases mappings and removes this search's segment directory.
func (s *spillSet) close() { s.closeSegs() }

// writeSpillSegment streams count entries from emit into a new segment
// at path, via tmp+fsync+rename.
func writeSpillSegment(path string, count int, emit func(fn func(enc []byte))) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)

	w := bufio.NewWriterSize(f, 1<<20)
	w.WriteString(spillMagic)
	hb, err := json.Marshal(spillHeader{Count: count})
	if err != nil {
		f.Close()
		return err
	}
	writeFrame := func(payload []byte) {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		w.Write(hdr[:])
		w.Write(payload)
	}
	writeFrame(append([]byte{spillSectionHeader}, hb...))

	// Blob frame: reserve the 8-byte header, stream entries while
	// accumulating the CRC and the index, patch the header afterwards.
	blobFrameOff := int64(len(spillMagic)) + 8 + int64(1+len(hb))
	w.Write(make([]byte, 8))
	type idxEnt struct{ fp, off uint64 }
	index := make([]idxEnt, 0, count)
	crc := crc32.NewIEEE()
	var blobLen uint64
	var tmpLen [binary.MaxVarintLen64]byte
	emit(func(enc []byte) {
		index = append(index, idxEnt{fp: model.Hash64(enc), off: blobLen})
		n := binary.PutUvarint(tmpLen[:], uint64(len(enc)))
		w.Write(tmpLen[:n])
		w.Write(enc)
		crc.Write(tmpLen[:n])
		crc.Write(enc)
		blobLen += uint64(n) + uint64(len(enc))
	})
	if len(index) != count {
		f.Close()
		return fmt.Errorf("checker: spill: drained %d entries, expected %d", len(index), count)
	}
	if blobLen > 1<<32-1 {
		f.Close()
		return fmt.Errorf("checker: spill: blob exceeds frame limit (%d bytes)", blobLen)
	}
	sort.Slice(index, func(i, j int) bool { return index[i].fp < index[j].fp })
	ib := make([]byte, 0, 16*len(index))
	for _, e := range index {
		ib = binary.LittleEndian.AppendUint64(ib, e.fp)
		ib = binary.LittleEndian.AppendUint64(ib, e.off)
	}
	writeFrame(ib)
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	var blobHdr [8]byte
	binary.LittleEndian.PutUint32(blobHdr[0:4], uint32(blobLen))
	binary.LittleEndian.PutUint32(blobHdr[4:8], crc.Sum32())
	if _, err := f.WriteAt(blobHdr[:], blobFrameOff); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// spillSegment is one immutable on-disk segment, probed through a
// read-only mapping of the whole file (or an in-heap copy where mmap is
// unavailable).
type spillSegment struct {
	path     string
	data     []byte
	mapped   bool
	count    int
	blobOff  int
	blobLen  int
	indexOff int
}

// openSpillSegment maps and fully validates a segment. Any validation
// failure returns an error; callers discard the segment and carry on —
// a corrupt segment degrades the search, never crashes it.
func openSpillSegment(path string) (*spillSegment, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	seg := &spillSegment{path: path, data: data, mapped: mapped}
	if err := seg.validate(); err != nil {
		seg.close()
		return nil, err
	}
	return seg, nil
}

func (g *spillSegment) validate() error {
	data := g.data
	bad := func(msg string) error { return fmt.Errorf("checker: spill segment %s: %s", g.path, msg) }
	if len(data) < len(spillMagic)+8 || string(data[:len(spillMagic)]) != spillMagic {
		return bad("bad magic")
	}
	pos := len(spillMagic)
	frame := func() ([]byte, error) {
		if len(data)-pos < 8 {
			return nil, bad("truncated frame")
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		pos += 8
		if len(data)-pos < n {
			return nil, bad("truncated payload")
		}
		payload := data[pos : pos+n]
		pos += n
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, bad("CRC mismatch")
		}
		return payload, nil
	}
	hdr, err := frame()
	if err != nil {
		return err
	}
	if len(hdr) < 1 || hdr[0] != spillSectionHeader {
		return bad("missing header section")
	}
	var h spillHeader
	if err := json.Unmarshal(hdr[1:], &h); err != nil {
		return bad("bad header: " + err.Error())
	}
	g.blobOff = pos + 8
	blob, err := frame()
	if err != nil {
		return err
	}
	g.blobLen = len(blob)
	g.indexOff = pos + 8
	index, err := frame()
	if err != nil {
		return err
	}
	if pos != len(data) {
		return bad("trailing bytes")
	}
	if h.Count < 0 || len(index) != 16*h.Count {
		return bad("index/count mismatch")
	}
	g.count = h.Count
	var prev uint64
	for i := 0; i < g.count; i++ {
		fp := g.fpAt(i)
		if i > 0 && fp < prev {
			return bad("index not sorted")
		}
		prev = fp
		off := g.offAt(i)
		if _, ok := g.entryAt(off); !ok {
			return bad("entry out of range")
		}
	}
	return nil
}

func (g *spillSegment) fpAt(i int) uint64 {
	return binary.LittleEndian.Uint64(g.data[g.indexOff+16*i:])
}

func (g *spillSegment) offAt(i int) uint64 {
	return binary.LittleEndian.Uint64(g.data[g.indexOff+16*i+8:])
}

func (g *spillSegment) entryAt(off uint64) ([]byte, bool) {
	if off >= uint64(g.blobLen) {
		return nil, false
	}
	blob := g.data[g.blobOff : g.blobOff+g.blobLen]
	l, w := binary.Uvarint(blob[off:])
	if w <= 0 || l > uint64(len(blob))-off-uint64(w) {
		return nil, false
	}
	start := off + uint64(w)
	return blob[start : start+l], true
}

// contains probes the segment: binary search over the sorted
// fingerprint index, then byte comparison of each colliding entry.
func (g *spillSegment) contains(fp uint64, enc []byte) bool {
	i := sort.Search(g.count, func(i int) bool { return g.fpAt(i) >= fp })
	for ; i < g.count && g.fpAt(i) == fp; i++ {
		if e, ok := g.entryAt(g.offAt(i)); ok && bytes.Equal(e, enc) {
			return true
		}
	}
	return false
}

// forEach streams every entry in blob order.
func (g *spillSegment) forEach(fn func(enc []byte)) {
	blob := g.data[g.blobOff : g.blobOff+g.blobLen]
	for off := uint64(0); off < uint64(len(blob)); {
		l, w := binary.Uvarint(blob[off:])
		start := off + uint64(w)
		fn(blob[start : start+l])
		off = start + l
	}
}

func (g *spillSegment) close() {
	if g.mapped {
		unmapFile(g.data)
	}
	g.data = nil
}
