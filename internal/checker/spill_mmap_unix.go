//go:build unix

package checker

import (
	"os"
	"syscall"
)

// mapFile returns a read-only view of the file at path: an mmap where
// the platform supports it (mapped=true — pages are file-backed and
// reclaimable, so multi-GB spill segments cost no heap), falling back
// to reading the file into memory.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, false, nil
	}
	if int64(int(size)) == size {
		if m, merr := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED); merr == nil {
			return m, true, nil
		}
	}
	data, err = os.ReadFile(path)
	return data, false, err
}

func unmapFile(data []byte) {
	if data != nil {
		syscall.Munmap(data)
	}
}
