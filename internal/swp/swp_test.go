package swp

import (
	"testing"

	"pnp/internal/checker"
)

func TestSlidingWindowSmall(t *testing.T) {
	res, err := Verify(Config{Frames: 2, Window: 2}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK || !res.Delivery.OK {
		t.Fatalf("safety=%s delivery=%s", res.Safety.Summary(), res.Delivery.Summary())
	}
}

func TestSlidingWindowDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive frames=3 window=2 verification takes ~10 s")
	}
	res, err := Verify(Config{}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK {
		t.Fatalf("safety failed: %s\n%s", res.Safety.Summary(), res.Safety.Trace)
	}
	if !res.Delivery.OK {
		t.Fatalf("delivery goal failed: %s\n%s", res.Delivery.Summary(), res.Delivery.Trace)
	}
	t.Logf("frames=3 window=2: %d states", res.Safety.Stats.StatesStored)
}

func TestSlidingWindowWindowOne(t *testing.T) {
	// Window 1 degenerates to stop-and-wait (ABP without the bit).
	res, err := Verify(Config{Frames: 2, Window: 1}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK || !res.Delivery.OK {
		t.Fatalf("safety=%s delivery=%s", res.Safety.Summary(), res.Delivery.Summary())
	}
}

func TestSlidingWindowWiderWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("larger window enlarges the state space")
	}
	// Window 3 over 4 frames exceeds the exhaustive budget; run a bounded
	// safety sweep (no violation within the limit).
	res, err := Verify(Config{Frames: 4, Window: 3}, nil, checker.Options{
		MaxStates: 400000, PartialOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK && res.Safety.Kind != checker.SearchLimit {
		t.Fatalf("bounded sweep found: %s\n%s", res.Safety.Summary(), res.Safety.Trace)
	}
	t.Logf("bounded sweep: %d states without violation", res.Safety.Stats.StatesStored)
}

func TestSlidingWindowPORAgrees(t *testing.T) {
	full, err := Verify(Config{Frames: 2, Window: 2}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	por, err := Verify(Config{Frames: 2, Window: 2}, nil, checker.Options{PartialOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Safety.OK != por.Safety.OK {
		t.Fatalf("POR changed the verdict: %v vs %v", full.Safety.OK, por.Safety.OK)
	}
	if por.Safety.Stats.StatesStored > full.Safety.Stats.StatesStored {
		t.Errorf("POR stored more states: %d > %d",
			por.Safety.Stats.StatesStored, full.Safety.Stats.StatesStored)
	}
}
