// Package swp implements a go-back-N sliding window protocol over
// Plug-and-Play connectors, generalizing the alternating bit protocol
// (internal/abp) to windows larger than one frame in flight. Data and
// acknowledgements both cross *dropping* channels; retransmission is
// triggered by failed ack polls (the nonblocking-receive rendering of a
// retransmission timer).
//
// Verified properties:
//   - frames are delivered in order, exactly once (safety invariant);
//   - completing the transfer always remains possible (AG EF), because
//     the receiver keeps re-acknowledging duplicates forever.
package swp

import (
	"fmt"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
)

// Source is the pml model. Sequence numbers are 1..k (no wraparound for
// the verified configurations); the cumulative ack carries the highest
// in-order sequence delivered.
const Source = `
byte delivered;
byte badDelivery;

/* Go-back-N sender: keep up to w unacknowledged frames in flight; a
 * failed ack poll plays the role of the retransmission timer and rewinds
 * next to base. */
proctype SwpSender(chan dsig; chan ddat; chan asig; chan adat; byte k; byte w) {
	byte base, next;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	base = 1;
	next = 1;
	do
	:: base > k -> break
	:: next < base + w && next <= k ->
	   ddat!next,0,next,0,1;
	   dsig?st,_;
	   next = next + 1
	:: else ->
	   adat!0,0,0,0,1;
	   asig?st,_;
	   adat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC && d >= base ->
	      base = d + 1
	   :: st == RECV_SUCC ->
	      skip        /* stale cumulative ack */
	   :: else ->
	      next = base /* timer expiry: go back N */
	   fi
	od
}

/* Receiver: deliver the expected frame and cumulatively acknowledge;
 * anything else re-triggers the last ack. It serves forever (end state)
 * so late retransmissions are always answered. */
proctype SwpReceiver(chan dsig; chan ddat; chan asig; chan adat; byte k) {
	byte e;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	e = 1;
	end: do
	:: ddat!0,0,0,0,1;
	   dsig?st,_;
	   ddat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC && d == e ->
	      if
	      :: d == delivered + 1 -> skip
	      :: else -> badDelivery = 1
	      fi;
	      delivered = delivered + 1;
	      e = e + 1;
	      adat!delivered,0,0,0,1;
	      asig?st,_
	   :: st == RECV_SUCC ->
	      adat!delivered,0,0,0,1;
	      asig?st,_
	   :: else
	   fi
	od
}
`

// Config sizes the protocol run.
type Config struct {
	Frames int // frames to transfer (default 3)
	Window int // go-back-N window (default 2)
}

func (c Config) withDefaults() Config {
	if c.Frames == 0 {
		c.Frames = 3
	}
	if c.Window == 0 {
		c.Window = 2
	}
	return c
}

// Build composes sender and receiver over two lossy connectors. The data
// channel holds up to the window size; the ack channel one ack.
func Build(cfg Config, cache *blocks.Cache) (*blocks.Builder, error) {
	cfg = cfg.withDefaults()
	b, err := blocks.NewBuilder(Source, cache)
	if err != nil {
		return nil, err
	}
	dataSpec := blocks.ConnectorSpec{
		Send:    blocks.AsynBlockingSend,
		Channel: blocks.DroppingBuffer, Size: cfg.Window,
		Recv: blocks.NonblockingRecv,
	}
	ackSpec := blocks.ConnectorSpec{
		Send:    blocks.AsynBlockingSend,
		Channel: blocks.DroppingBuffer, Size: 1,
		Recv: blocks.NonblockingRecv,
	}
	data, err := b.NewConnector("Data", dataSpec)
	if err != nil {
		return nil, err
	}
	ack, err := b.NewConnector("Ack", ackSpec)
	if err != nil {
		return nil, err
	}
	sData, err := data.AddSender("Sender")
	if err != nil {
		return nil, err
	}
	rData, err := data.AddReceiver("Receiver")
	if err != nil {
		return nil, err
	}
	sAck, err := ack.AddSender("ReceiverAck")
	if err != nil {
		return nil, err
	}
	rAck, err := ack.AddReceiver("SenderAck")
	if err != nil {
		return nil, err
	}
	if _, err := b.Spawn("SwpSender",
		model.Chan(sData.Sig), model.Chan(sData.Dat),
		model.Chan(rAck.Sig), model.Chan(rAck.Dat),
		model.Int(int64(cfg.Frames)), model.Int(int64(cfg.Window))); err != nil {
		return nil, err
	}
	if _, err := b.Spawn("SwpReceiver",
		model.Chan(rData.Sig), model.Chan(rData.Dat),
		model.Chan(sAck.Sig), model.Chan(sAck.Dat),
		model.Int(int64(cfg.Frames))); err != nil {
		return nil, err
	}
	return b, nil
}

// Results holds the verdicts.
type Results struct {
	Safety   *checker.Result
	Delivery *checker.Result // AG EF (delivered == frames)
	Complete *checker.Result // AG EF (sender finished too)
}

// Verify builds and checks the protocol.
func Verify(cfg Config, cache *blocks.Cache, opts checker.Options) (*Results, error) {
	cfg = cfg.withDefaults()
	b, err := Build(cfg, cache)
	if err != nil {
		return nil, err
	}
	inOrder, err := checker.InvariantFromSource(b.Program(), "in-order", "badDelivery == 0")
	if err != nil {
		return nil, err
	}
	once, err := checker.InvariantFromSource(b.Program(), "exactly-once",
		fmt.Sprintf("delivered <= %d", cfg.Frames))
	if err != nil {
		return nil, err
	}
	safetyOpts := opts
	safetyOpts.Invariants = append(safetyOpts.Invariants, inOrder, once)
	safety := checker.New(b.System(), safetyOpts).CheckSafety()

	target, err := b.Program().CompileGlobalExpr(fmt.Sprintf("delivered == %d", cfg.Frames))
	if err != nil {
		return nil, err
	}
	delivery := checker.New(b.System(), opts).CheckEventuallyReachable(target)
	return &Results{Safety: safety, Delivery: delivery}, nil
}
