package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"text/tabwriter"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4). Labeled instruments share one
// TYPE line per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var counters, gauges, hists []string
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	r.mu.Unlock()
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)

	typed := map[string]bool{}
	emitType := func(name, kind string) {
		base, _ := splitName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, n := range counters {
		emitType(n, "counter")
		fmt.Fprintf(w, "%s %d\n", n, r.Counter(n).Value())
	}
	for _, n := range gauges {
		emitType(n, "gauge")
		fmt.Fprintf(w, "%s %d\n", n, r.Gauge(n).Value())
	}
	for _, n := range hists {
		emitType(n, "histogram")
		h := r.Histogram(n, nil)
		base, labels := splitName(n)
		bounds, counts := h.buckets()
		for i := range bounds {
			le := "+Inf"
			if !math.IsInf(bounds[i], 1) {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			lb := `le="` + le + `"`
			if labels != "" {
				lb = labels + "," + lb
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, lb, counts[i])
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", base, suffix, h.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count())
	}
	return nil
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
}

// WriteJSON renders every instrument as one JSON object with
// "counters", "gauges", and "histograms" sections.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	out := struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]int64         `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]jsonHistogram{},
	}
	r.mu.Lock()
	for n, c := range r.counters {
		out.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		out.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		bounds, counts := h.buckets()
		jb := map[string]int64{}
		for i := range bounds {
			le := "+Inf"
			if !math.IsInf(bounds[i], 1) {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			jb[le] = counts[i]
		}
		out.Histograms[n] = jsonHistogram{Count: h.Count(), Sum: h.Sum(), Buckets: jb}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Dump writes a human-readable aligned table of every instrument,
// sorted by name — the per-experiment metrics table of the CLIs.
func (r *Registry) Dump(w io.Writer) {
	if r == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	type row struct{ name, value string }
	var rows []row
	r.mu.Lock()
	for n, c := range r.counters {
		rows = append(rows, row{n, strconv.FormatInt(c.Value(), 10)})
	}
	for n, g := range r.gauges {
		rows = append(rows, row{n, strconv.FormatInt(g.Value(), 10)})
	}
	for n, h := range r.hists {
		rows = append(rows, row{n, fmt.Sprintf("count=%d sum=%.6g", h.Count(), h.Sum())})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, rw := range rows {
		fmt.Fprintf(tw, "  %s\t%s\n", rw.name, rw.value)
	}
	tw.Flush()
}

// Mount attaches an extra handler to the metrics mux — the daemons use
// it to expose their tracing flight recorder on /debug/trace next to
// /metrics.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Handler returns an http.Handler serving the registry: /metrics
// (Prometheus text), /metrics.json (JSON), and /healthz, plus any
// extra mounts.
func (r *Registry) Handler(extra ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	for _, m := range extra {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Serve exposes the registry over HTTP on addr (host:port; port 0
// picks a free one), plus any extra mounts. It returns as soon as the
// listener is bound; the server runs until Close.
func Serve(r *Registry, addr string, extra ...Mount) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	srv := &http.Server{Handler: r.Handler(extra...)}
	go srv.Serve(l)
	return &Server{l: l, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// expvar names may be published only once per process; remember ours.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the registry's JSON snapshot under the given
// expvar name (on /debug/vars of the default mux). The first call wins:
// later calls with the same name are no-ops, never panics.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	reg := r
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		snap := struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		}{map[string]int64{}, map[string]int64{}}
		reg.mu.Lock()
		for n, c := range reg.counters {
			snap.Counters[n] = c.Value()
		}
		for n, g := range reg.gauges {
			snap.Gauges[n] = g.Value()
		}
		reg.mu.Unlock()
		return snap
	}))
}
