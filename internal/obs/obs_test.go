package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	r.Dump(io.Discard)
	r.PublishExpvar("nil-reg")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	bounds, counts := h.buckets()
	// Cumulative: <=0.01 has 2 (0.005 and the inclusive 0.01), <=0.1 has
	// 3, <=1 has 4, +Inf has all 5.
	want := []int64{2, 3, 4, 5}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket le=%g cumulative = %d, want %d", bounds[i], counts[i], want[i])
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{1}).Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestLabels(t *testing.T) {
	if got, want := Labels("x_total", "conn", "pipe", "port", "send0"), `x_total{conn="pipe",port="send0"}`; got != want {
		t.Errorf("Labels = %q, want %q", got, want)
	}
	if got := Labels("bare"); got != "bare" {
		t.Errorf("Labels no-kv = %q", got)
	}
	base, lb := splitName(`x_total{conn="pipe"}`)
	if base != "x_total" || lb != `conn="pipe"` {
		t.Errorf("splitName = %q, %q", base, lb)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labels("sends_total", "conn", "a")).Add(3)
	r.Counter(Labels("sends_total", "conn", "b")).Add(4)
	r.Gauge("depth").Set(2)
	r.Histogram("lat", []float64{0.5}).Observe(0.25)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sends_total counter",
		`sends_total{conn="a"} 3`,
		`sends_total{conn="b"} 4`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat histogram",
		`lat_bucket{le="0.5"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 0.25",
		"lat_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line for the shared base name.
	if strings.Count(out, "# TYPE sends_total") != 1 {
		t.Errorf("want exactly one TYPE line for sends_total:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []float64{1}).Observe(2)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     float64          `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got.Counters["c"] != 2 || got.Gauges["g"] != -1 {
		t.Errorf("bad scalar values: %+v", got)
	}
	h := got.Histograms["h"]
	if h.Count != 1 || h.Sum != 2 || h.Buckets["+Inf"] != 1 || h.Buckets["1"] != 0 {
		t.Errorf("bad histogram: %+v", h)
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(1)
	r.Counter("a_total").Add(2)
	var b bytes.Buffer
	r.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "a_total") || !strings.Contains(out, "b_total") {
		t.Errorf("dump missing metrics:\n%s", out)
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("dump not sorted:\n%s", out)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(9)
	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "served_total 9",
		"/metrics.json": `"served_total": 9`,
		"/healthz":      "ok",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q:\n%s", path, want, body)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total").Add(3)
	r.PublishExpvar("pnp-test")
	r.PublishExpvar("pnp-test") // idempotent, must not panic
	v := expvar.Get("pnp-test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), "ev_total") {
		t.Errorf("expvar snapshot missing counter: %s", v.String())
	}
}
