// Package obs is the observability layer of the Plug-and-Play
// toolchain: a dependency-free metrics registry (atomic counters,
// gauges, and bounded histograms) with Prometheus-text, JSON, and
// expvar exposition plus an optional HTTP endpoint.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, and a nil *Registry hands out nil instruments.
// Hot paths therefore instrument unconditionally and pay only a
// predictable nil check when observability is disabled.
//
// Well-known metric families, by emitter:
//
//   - checker_* — search progress (internal/checker)
//   - pnprt_*   — runtime connector traffic (internal/pnprt)
//   - verifyd_* — verification-service jobs and caches (internal/verifyd)
//   - sweeps_total, sweep_cells_total, sweep_cache_hits_total,
//     sweep_cells_in_flight — design-space sweeps (internal/sweep):
//     sweep_cache_hits_total counts cells answered without a search,
//     either deduplicated inside a sweep or served whole from the
//     verification service's result cache.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded-bucket histogram: observations are counted
// into len(bounds)+1 buckets (the last one catches everything above the
// highest bound) and summed. Buckets are cumulative on exposition, the
// Prometheus convention.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; counts[i] <= bounds[i], last = +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// LatencyBuckets are the default bounds for send-to-receive latency in
// seconds: exponential from 1µs to 1s.
var LatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1,
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// buckets returns (bound, cumulative-count) pairs ending with +Inf.
func (h *Histogram) buckets() ([]float64, []int64) {
	bounds := make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = math.Inf(1)
	counts := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	return bounds, counts
}

// Registry holds named instruments. The zero value is not usable; a nil
// *Registry is: it hands out nil (no-op) instruments, making disabled
// observability free apart from nil checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil when the
// registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil when the
// registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given sorted bucket bounds; nil when the registry is nil. Bounds are
// fixed at first creation; nil bounds default to LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Labels renders a metric name with label pairs in Prometheus form:
// Labels("x_total", "conn", "pipe") == `x_total{conn="pipe"}`. Pairs
// are alternating key, value; a trailing odd key is ignored.
func Labels(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a possibly-labeled metric name into its base name
// and the label body (without braces, "" when unlabeled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}
