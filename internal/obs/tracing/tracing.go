// Package tracing is the distributed-tracing layer of the Plug-and-Play
// toolchain: lightweight spans (trace/span/parent IDs, attributes,
// timed events) recorded into a bounded in-process ring — a flight
// recorder — with W3C-style traceparent propagation over HTTP.
//
// One verification run yields one coherent trace: a pnpsweep -remote
// invocation produces sweep → cell → job → checker-phase spans whose
// per-level events carry frontier sizes and exploration rates, and the
// same TraceID threads the client, the daemon's structured logs, and
// GET /v1/{jobs,sweeps}/{id}/trace.
//
// Everything is nil-safe in the obs idiom: methods on a nil *Recorder
// or nil *Span are no-ops, so instrumented paths pay only a nil check
// when tracing is disabled. Completed spans land in the ring; readers
// snapshot by trace ID and export as NDJSON (one span per line) or as
// Chrome trace_event JSON for chrome://tracing and Perfetto.
package tracing

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one end-to-end trace (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// String renders the ID in lowercase hex, the traceparent form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID in lowercase hex, the traceparent form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the all-zero (invalid per W3C) trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the all-zero (invalid per W3C) span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// NewTraceID returns a random non-zero trace ID. math/rand/v2's global
// generator is randomly seeded per process and safe for concurrent use,
// so IDs are unique across the fleet without a syscall per span.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], rand.Uint64())
		putUint64(t[8:], rand.Uint64())
	}
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// parseID decodes a fixed-size lowercase-hex ID.
func parseID(dst, src []byte) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	_, err := hex.Decode(dst, src)
	return err == nil
}

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A attaches a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one timed annotation inside a span — a BFS level, a cache
// hit, a protocol signal.
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanData is the completed-span record held in the ring and streamed
// over NDJSON — the wire shape of GET /v1/jobs/{id}/trace.
type SpanData struct {
	TraceID string    `json:"trace_id"`
	SpanID  string    `json:"span_id"`
	Parent  string    `json:"parent_span_id,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Attrs   []Attr    `json:"attrs,omitempty"`
	Events  []Event   `json:"events,omitempty"`
}

// Duration is the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// maxEventsPerSpan bounds a single span's event list; overflowing events
// are counted and surfaced as a dropped_events attribute so a
// million-level search cannot balloon the flight recorder.
const maxEventsPerSpan = 256

// Span is one in-flight operation. A nil *Span is a valid no-op
// receiver, so instrumentation never branches on "tracing enabled".
type Span struct {
	rec    *Recorder
	tid    TraceID
	sid    SpanID
	parent SpanID

	mu      sync.Mutex
	name    string
	start   time.Time
	attrs   []Attr
	events  []Event
	dropped int
	ended   bool
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tid
}

// SpanID returns the span's ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.sid
}

// SpanContext is the propagated (trace, span) pair — what a traceparent
// header carries across a process boundary.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tid, SpanID: s.sid}
}

// SetAttr attaches an attribute. Safe on nil and after End (ignored).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// AddEvent appends a timed event, up to maxEventsPerSpan; the overflow
// count surfaces as a dropped_events attribute on End. Safe on nil and
// for concurrent use.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	switch {
	case s.ended:
	case len(s.events) >= maxEventsPerSpan:
		s.dropped++
	default:
		s.events = append(s.events, Event{Time: time.Now(), Name: name, Attrs: attrs})
	}
	s.mu.Unlock()
}

// End completes the span and records it into the recorder's ring.
// Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if s.dropped > 0 {
		s.attrs = append(s.attrs, Attr{Key: "dropped_events", Value: itoa(s.dropped)})
	}
	data := SpanData{
		TraceID: s.tid.String(),
		SpanID:  s.sid.String(),
		Name:    s.name,
		Start:   s.start,
		End:     time.Now(),
		Attrs:   s.attrs,
		Events:  s.events,
	}
	if !s.parent.IsZero() {
		data.Parent = s.parent.String()
	}
	s.mu.Unlock()
	s.rec.record(data)
}

// itoa avoids strconv for the one small-int rendering End needs.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// DefaultRecorderCapacity is the ring size when NewRecorder is given a
// non-positive capacity.
const DefaultRecorderCapacity = 4096

// Recorder is the flight recorder: a bounded ring of completed spans.
// When full, the oldest spans fall off — the view is always the most
// recent window. A nil *Recorder disables tracing: StartSpan returns a
// nil span and the context unchanged.
type Recorder struct {
	mu      sync.Mutex
	buf     []SpanData
	head    int // index of the oldest span
	n       int // spans currently held
	dropped int64
}

// NewRecorder creates a flight recorder holding up to capacity
// completed spans.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]SpanData, capacity)}
}

func (r *Recorder) record(d SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.buf[r.head] = d
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.head+r.n)%len(r.buf)] = d
		r.n++
	}
	r.mu.Unlock()
}

// Dropped returns how many completed spans have been evicted so far.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of spans currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Spans returns a copy of the current window, oldest-completed first.
func (r *Recorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Trace returns the recorded spans of one trace, ordered by start time
// (parents started before their children, so the NDJSON stream reads
// top-down).
func (r *Recorder) Trace(id TraceID) []SpanData { return r.TraceHex(id.String()) }

// TraceHex is Trace keyed by the hex form — what URLs and job records
// carry.
func (r *Recorder) TraceHex(hexID string) []SpanData {
	if r == nil {
		return nil
	}
	var out []SpanData
	for _, d := range r.Spans() {
		if d.TraceID == hexID {
			out = append(out, d)
		}
	}
	sortSpans(out)
	return out
}

// TraceSummary describes one trace present in the ring.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"` // name of the earliest span
	Spans   int       `json:"spans"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
}

// Traces summarizes every trace in the ring, most recent first.
func (r *Recorder) Traces() []TraceSummary {
	if r == nil {
		return nil
	}
	byID := map[string]*TraceSummary{}
	var order []string
	for _, d := range r.Spans() {
		ts := byID[d.TraceID]
		if ts == nil {
			ts = &TraceSummary{TraceID: d.TraceID, Root: d.Name, Start: d.Start, End: d.End}
			byID[d.TraceID] = ts
			order = append(order, d.TraceID)
		}
		ts.Spans++
		if d.Start.Before(ts.Start) {
			ts.Start = d.Start
			ts.Root = d.Name
		}
		if d.End.After(ts.End) {
			ts.End = d.End
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		out = append(out, *byID[order[i]])
	}
	return out
}

// sortSpans orders by start time, then span ID for stability.
func sortSpans(spans []SpanData) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0; j-- {
			a, b := &spans[j-1], &spans[j]
			if a.Start.Before(b.Start) || (a.Start.Equal(b.Start) && a.SpanID <= b.SpanID) {
				break
			}
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
}

// --- context propagation ---

type spanKey struct{}
type remoteKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span; child
// spans started from the returned context parent to it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithRemote returns ctx carrying a remote parent (an extracted
// traceparent): spans started from it join the remote trace. An invalid
// sc returns ctx unchanged.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteFromContext returns the remote parent, or a zero SpanContext.
func RemoteFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// Current returns the propagation context of the current span, falling
// back to the remote parent — what an outbound traceparent should carry.
func Current(ctx context.Context) SpanContext {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.Context()
	}
	return RemoteFromContext(ctx)
}

// StartSpan begins a span named name. The parent is the current span in
// ctx, else the remote parent from an extracted traceparent, else the
// span roots a fresh trace. The returned context carries the new span.
// On a nil recorder both returns are pass-throughs (ctx, nil).
func (r *Recorder) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	sp := &Span{rec: r, sid: NewSpanID(), name: name, start: time.Now(), attrs: attrs}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.tid, sp.parent = parent.tid, parent.sid
	} else if sc := RemoteFromContext(ctx); sc.Valid() {
		sp.tid, sp.parent = sc.TraceID, sc.SpanID
	} else {
		sp.tid = NewTraceID()
	}
	return ContextWithSpan(ctx, sp), sp
}
