package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDs(t *testing.T) {
	tid := NewTraceID()
	if tid.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	if len(tid.String()) != 32 {
		t.Fatalf("trace id hex length = %d, want 32", len(tid.String()))
	}
	sid := NewSpanID()
	if sid.IsZero() {
		t.Fatal("NewSpanID returned zero")
	}
	if len(sid.String()) != 16 {
		t.Fatalf("span id hex length = %d, want 16", len(sid.String()))
	}
	if NewTraceID() == tid {
		t.Fatal("two trace IDs collided")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	s := FormatTraceparent(sc)
	got, ok := ParseTraceparent(s)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", s)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // no flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // reserved version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // bad hex
		"000af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-010", // bad dashes
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	// Future versions with the same layout parse.
	if _, ok := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"); !ok {
		t.Error("version 01 with v00 layout should parse")
	}
}

func TestInjectExtract(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	Inject(req, sc)
	if got := Extract(req); got != sc {
		t.Fatalf("Extract = %+v, want %+v", got, sc)
	}
	// Invalid context leaves the request untouched.
	req2 := httptest.NewRequest(http.MethodGet, "/", nil)
	Inject(req2, SpanContext{})
	if req2.Header.Get(Header) != "" {
		t.Fatal("Inject set a header for an invalid SpanContext")
	}
	if Extract(req2).Valid() {
		t.Fatal("Extract returned a valid context from a header-less request")
	}
}

func TestSpanParenting(t *testing.T) {
	rec := NewRecorder(16)
	ctx, root := rec.StartSpan(context.Background(), "sweep", A("cells", "4"))
	cctx, cell := rec.StartSpan(ctx, "cell")
	_, job := rec.StartSpan(cctx, "job")

	if cell.TraceID() != root.TraceID() || job.TraceID() != root.TraceID() {
		t.Fatal("children did not inherit the root's trace ID")
	}
	job.End()
	cell.End()
	root.End()

	spans := rec.Trace(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	// Ordered by start: root, cell, job.
	if spans[0].Name != "sweep" || spans[1].Name != "cell" || spans[2].Name != "job" {
		t.Fatalf("trace order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Parent != "" {
		t.Fatalf("root span has parent %q", spans[0].Parent)
	}
	if spans[1].Parent != spans[0].SpanID {
		t.Fatalf("cell parent = %q, want %q", spans[1].Parent, spans[0].SpanID)
	}
	if spans[2].Parent != spans[1].SpanID {
		t.Fatalf("job parent = %q, want %q", spans[2].Parent, spans[1].SpanID)
	}
	if got := spans[0].Attrs[0]; got.Key != "cells" || got.Value != "4" {
		t.Fatalf("root attr = %+v", got)
	}
}

func TestRemoteParent(t *testing.T) {
	rec := NewRecorder(16)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := ContextWithRemote(context.Background(), remote)
	_, sp := rec.StartSpan(ctx, "job")
	if sp.TraceID() != remote.TraceID {
		t.Fatal("span did not join the remote trace")
	}
	sp.End()
	spans := rec.Trace(remote.TraceID)
	if len(spans) != 1 || spans[0].Parent != remote.SpanID.String() {
		t.Fatalf("span parent = %+v, want remote %s", spans, remote.SpanID)
	}

	// The current span wins over a remote parent.
	ctx2, local := rec.StartSpan(context.Background(), "local")
	ctx2 = ContextWithRemote(ctx2, remote)
	_, child := rec.StartSpan(ctx2, "child")
	if child.TraceID() != local.TraceID() {
		t.Fatal("in-process span should outrank the remote parent")
	}
	if Current(ctx2) != local.Context() {
		t.Fatal("Current should return the in-process span's context")
	}
}

func TestCurrentFallsBackToRemote(t *testing.T) {
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := ContextWithRemote(context.Background(), remote)
	if Current(ctx) != remote {
		t.Fatal("Current should surface the remote parent when no span is active")
	}
	if Current(context.Background()).Valid() {
		t.Fatal("Current of an empty context should be invalid")
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	ctx, sp := rec.StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("nil recorder should return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("nil recorder should return ctx unchanged")
	}
	// All nil-span methods are no-ops.
	sp.SetAttr("k", "v")
	sp.AddEvent("e")
	sp.End()
	if sp.TraceID() != (TraceID{}) || sp.SpanID() != (SpanID{}) || sp.Context().Valid() {
		t.Fatal("nil span should report zero IDs")
	}
	if rec.Len() != 0 || rec.Dropped() != 0 || rec.Spans() != nil || rec.Traces() != nil {
		t.Fatal("nil recorder accessors should return zeros")
	}
	if rec.TraceHex("00") != nil {
		t.Fatal("nil recorder TraceHex should return nil")
	}
}

func TestRingBounded(t *testing.T) {
	rec := NewRecorder(4)
	var last *Span
	for i := 0; i < 10; i++ {
		_, sp := rec.StartSpan(context.Background(), "s")
		sp.End()
		last = sp
	}
	if rec.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", rec.Len())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
	spans := rec.Spans()
	if spans[len(spans)-1].SpanID != last.SpanID().String() {
		t.Fatal("newest span missing from the ring window")
	}
}

func TestEventCapAndIdempotentEnd(t *testing.T) {
	rec := NewRecorder(4)
	_, sp := rec.StartSpan(context.Background(), "levels")
	for i := 0; i < maxEventsPerSpan+10; i++ {
		sp.AddEvent("level")
	}
	sp.End()
	sp.End() // idempotent
	sp.SetAttr("late", "ignored")
	if rec.Len() != 1 {
		t.Fatalf("ring holds %d spans after double End, want 1", rec.Len())
	}
	d := rec.Spans()[0]
	if len(d.Events) != maxEventsPerSpan {
		t.Fatalf("events = %d, want cap %d", len(d.Events), maxEventsPerSpan)
	}
	var droppedAttr string
	for _, a := range d.Attrs {
		if a.Key == "dropped_events" {
			droppedAttr = a.Value
		}
		if a.Key == "late" {
			t.Fatal("SetAttr after End mutated the recorded span")
		}
	}
	if droppedAttr != "10" {
		t.Fatalf("dropped_events attr = %q, want \"10\"", droppedAttr)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	rec := NewRecorder(16)
	ctx, root := rec.StartSpan(context.Background(), "job", A("job_id", "j1"))
	_, phase := rec.StartSpan(ctx, "phase:safety")
	phase.AddEvent("level", A("depth", "3"), A("frontier", "128"))
	phase.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, rec.Trace(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d, want 2", len(lines))
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "job" || got[1].Name != "phase:safety" {
		t.Fatalf("ReadNDJSON = %+v", got)
	}
	if len(got[1].Events) != 1 || got[1].Events[0].Attrs[1].Value != "128" {
		t.Fatalf("event lost in round trip: %+v", got[1].Events)
	}
}

func TestReadNDJSONBad(t *testing.T) {
	if _, err := ReadNDJSON(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("ReadNDJSON accepted malformed input")
	}
	got, err := ReadNDJSON(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("blank stream: got %v, %v", got, err)
	}
}

func TestChromeTrace(t *testing.T) {
	rec := NewRecorder(64)
	ctx, root := rec.StartSpan(context.Background(), "sweep")
	c1ctx, c1 := rec.StartSpan(ctx, "cell:0")
	c2ctx, c2 := rec.StartSpan(ctx, "cell:1") // concurrent sibling
	_, j1 := rec.StartSpan(c1ctx, "job")
	j1.AddEvent("level", A("frontier", "16"))
	time.Sleep(time.Millisecond)
	j1.End()
	c1.End()
	_, j2 := rec.StartSpan(c2ctx, "job")
	j2.End()
	c2.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Trace(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v", err)
	}
	var xCount, iCount, mCount int
	lanes := map[string]float64{}
	for _, e := range evs {
		switch e["ph"] {
		case "X":
			xCount++
			lanes[e["name"].(string)+"/"+e["args"].(map[string]any)["span_id"].(string)] = e["tid"].(float64)
		case "i":
			iCount++
		case "M":
			mCount++
		}
	}
	if xCount != 5 {
		t.Fatalf("X events = %d, want 5", xCount)
	}
	if iCount != 1 {
		t.Fatalf("i events = %d, want 1", iCount)
	}
	if mCount != 1 {
		t.Fatalf("M events = %d, want 1", mCount)
	}
	// Concurrent siblings must not share a lane while both are open.
	var cellLanes []float64
	for k, v := range lanes {
		if strings.HasPrefix(k, "cell:") {
			cellLanes = append(cellLanes, v)
		}
	}
	if len(cellLanes) == 2 && cellLanes[0] == cellLanes[1] {
		t.Fatal("concurrent sibling cells landed on the same lane")
	}
}

func TestHandler(t *testing.T) {
	rec := NewRecorder(16)
	ctx, root := rec.StartSpan(context.Background(), "job")
	_, child := rec.StartSpan(ctx, "phase:safety")
	child.End()
	root.End()
	h := rec.Handler()

	// Listing.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("list status = %d", rw.Code)
	}
	var list struct {
		Traces []TraceSummary `json:"traces"`
		Spans  int            `json:"spans"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Spans != 2 || list.Spans != 2 {
		t.Fatalf("list = %+v", list)
	}

	// NDJSON by id.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/trace?id="+root.TraceID().String(), nil))
	if rw.Code != http.StatusOK || rw.Header().Get("Content-Type") != NDJSONContentType {
		t.Fatalf("ndjson status=%d ct=%q", rw.Code, rw.Header().Get("Content-Type"))
	}
	spans, err := ReadNDJSON(rw.Body)
	if err != nil || len(spans) != 2 {
		t.Fatalf("ndjson spans = %v, %v", spans, err)
	}

	// Chrome by id.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/trace?id="+root.TraceID().String()+"&format=chrome", nil))
	var evs []map[string]any
	if err := json.Unmarshal(rw.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) < 3 {
		t.Fatalf("chrome events = %d, want >= 3", len(evs))
	}

	// Unknown trace.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/trace?id=ffffffffffffffffffffffffffffffff", nil))
	if rw.Code != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", rw.Code)
	}

	// Nil recorder serves 404.
	var nilRec *Recorder
	rw = httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rw.Code != http.StatusNotFound {
		t.Fatalf("nil recorder status = %d, want 404", rw.Code)
	}
}

// TestConcurrent exercises the recorder and one shared span from many
// goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	rec := NewRecorder(128)
	ctx, root := rec.StartSpan(context.Background(), "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := rec.StartSpan(ctx, "worker")
				sp.SetAttr("g", itoa(g))
				sp.AddEvent("tick")
				root.AddEvent("shared")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if rec.Len() != 128 {
		t.Fatalf("ring holds %d, want full 128", rec.Len())
	}
	if got := rec.Dropped(); got != 800+1-128 {
		t.Fatalf("dropped = %d, want %d", got, 800+1-128)
	}
	for _, d := range rec.Spans() {
		if d.TraceID != root.TraceID().String() {
			t.Fatal("span escaped the root trace")
		}
	}
}
