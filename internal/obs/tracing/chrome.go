package tracing

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON array, the
// format chrome://tracing and Perfetto open directly. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document.
// Each trace becomes a process (pid) named by its TraceID; spans become
// "X" complete events assigned to thread lanes (tid) so that a child
// span sits directly under its still-open parent, concurrent siblings
// fan out to separate lanes, and span events appear as "i" instants on
// the owning span's lane.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	byTrace := make(map[string][]SpanData)
	var order []string
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	sort.Strings(order)

	var evs []chromeEvent
	for pid, tid := range order {
		trace := byTrace[tid]
		evs = append(evs, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pid,
			Args:  map[string]any{"name": "trace " + tid},
		})
		evs = append(evs, chromeLanes(trace, pid)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// chromeLanes lays one trace's spans out on thread lanes. Spans are
// processed in start order; each lane carries a stack of open spans, and
// a span lands on the lane whose top (after popping spans that ended
// before it started) is its parent — the on-top-of-stack heuristic that
// reproduces the nesting Chrome's flame view expects without requiring
// real thread identities.
func chromeLanes(trace []SpanData, pid int) []chromeEvent {
	sorted := make([]SpanData, len(trace))
	copy(sorted, trace)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].End.After(sorted[j].End)
	})

	var lanes [][]SpanData // per-lane stack of open spans
	var evs []chromeEvent
	for _, s := range sorted {
		lane := -1
		empty := -1
		for li := range lanes {
			st := lanes[li]
			for len(st) > 0 && !st[len(st)-1].End.After(s.Start) {
				st = st[:len(st)-1]
			}
			lanes[li] = st
			if len(st) == 0 {
				if empty < 0 {
					empty = li
				}
				continue
			}
			if s.Parent != "" && st[len(st)-1].SpanID == s.Parent {
				lane = li
				break
			}
		}
		if lane < 0 {
			if s.Parent == "" && empty >= 0 {
				lane = empty
			} else if s.Parent != "" {
				// Parent not on any stack (already ended, or its lane is
				// covered by a sibling): prefer a fresh lane so the span
				// doesn't visually nest under an unrelated one.
				if empty >= 0 {
					lane = empty
				} else {
					lanes = append(lanes, nil)
					lane = len(lanes) - 1
				}
			} else {
				lanes = append(lanes, nil)
				lane = len(lanes) - 1
			}
		}
		lanes[lane] = append(lanes[lane], s)

		args := make(map[string]any, len(s.Attrs)+2)
		args["trace_id"] = s.TraceID
		args["span_id"] = s.SpanID
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		dur := s.End.Sub(s.Start).Microseconds()
		if dur < 1 {
			dur = 1 // zero-width events are invisible in the flame view
		}
		evs = append(evs, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.Start.UnixMicro(),
			Dur:   dur,
			PID:   pid,
			TID:   lane,
			Args:  args,
		})
		for _, e := range s.Events {
			ia := make(map[string]any, len(e.Attrs)+1)
			ia["span"] = s.Name
			for _, a := range e.Attrs {
				ia[a.Key] = a.Value
			}
			evs = append(evs, chromeEvent{
				Name:  e.Name,
				Phase: "i",
				TS:    e.Time.UnixMicro(),
				PID:   pid,
				TID:   lane,
				Scope: "t",
				Args:  ia,
			})
		}
	}
	return evs
}
