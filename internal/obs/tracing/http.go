package tracing

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
)

// Header is the W3C Trace Context propagation header.
const Header = "traceparent"

// FormatTraceparent renders a span context in the W3C version-00 form:
// 00-<32 hex trace id>-<16 hex span id>-01 (sampled).
func FormatTraceparent(sc SpanContext) string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent decodes a version-00 traceparent value. It accepts
// any two-digit version except the reserved "ff", per the spec, and
// rejects all-zero IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if s[:2] == "ff" || !isHex(s[:2]) || !isHex(s[53:55]) {
		return SpanContext{}, false
	}
	var sc SpanContext
	if !parseID(sc.TraceID[:], []byte(s[3:35])) || !parseID(sc.SpanID[:], []byte(s[36:52])) {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// Inject stamps the request with sc as a traceparent header; an invalid
// sc leaves the request untouched.
func Inject(req *http.Request, sc SpanContext) {
	if sc.Valid() {
		req.Header.Set(Header, FormatTraceparent(sc))
	}
}

// Extract reads the request's traceparent, returning a zero SpanContext
// when absent or malformed.
func Extract(r *http.Request) SpanContext {
	sc, _ := ParseTraceparent(r.Header.Get(Header))
	return sc
}

// WriteNDJSON streams spans as newline-delimited JSON, one SpanData per
// line — the wire format of the /v1 trace endpoints.
func WriteNDJSON(w io.Writer, spans []SpanData) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON decodes a span-per-line stream produced by WriteNDJSON.
// Blank lines are skipped; the typed client uses it to rebuild remote
// traces for local Chrome export.
func ReadNDJSON(r io.Reader) ([]SpanData, error) {
	sc := bufio.NewScanner(r)
	// Spans with full event lists exceed bufio's default 64KiB line cap.
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []SpanData
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d SpanData
		if err := json.Unmarshal(line, &d); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// NDJSONContentType is the media type of the trace endpoints.
const NDJSONContentType = "application/x-ndjson"

// Handler serves the flight recorder for debugging:
//
//	GET /debug/trace                     recent traces in the ring (JSON)
//	GET /debug/trace?id=<hex>            one trace as NDJSON spans
//	GET /debug/trace?id=<hex>&format=chrome  one trace as Chrome trace JSON
//
// Mount it on the metrics mux; a nil recorder serves 404s.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		id := req.URL.Query().Get("id")
		if id == "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Traces  []TraceSummary `json:"traces"`
				Spans   int            `json:"spans"`
				Dropped int64          `json:"dropped"`
			}{r.Traces(), r.Len(), r.Dropped()})
			return
		}
		spans := r.TraceHex(id)
		if len(spans) == 0 {
			http.Error(w, "no such trace in the ring", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteChromeTrace(w, spans)
			return
		}
		w.Header().Set("Content-Type", NDJSONContentType)
		WriteNDJSON(w, spans)
	})
}
