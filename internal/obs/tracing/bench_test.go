package tracing

import (
	"context"
	"testing"
)

// BenchmarkSpanOverhead measures the cost of one instrumented operation
// (StartSpan + SetAttr + AddEvent + End) with the recorder enabled and
// with tracing disabled (nil recorder). The disabled path must stay
// near-zero: it is the price every verifyd job and checker phase pays
// when no flight recorder is configured.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		rec := NewRecorder(1024)
		ctx, root := rec.StartSpan(context.Background(), "root")
		defer root.End()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, sp := rec.StartSpan(ctx, "op")
			sp.SetAttr("k", "v")
			sp.AddEvent("e")
			sp.End()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var rec *Recorder
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cctx, sp := rec.StartSpan(ctx, "op")
			sp.SetAttr("k", "v")
			sp.AddEvent("e")
			sp.End()
			_ = cctx
		}
	})
}
