package obs

import "testing"

// BenchmarkDisabledInstruments measures the nil fast path: the cost an
// instrumented hot path pays when observability is off. These should
// be low single-digit nanoseconds — the <5% overhead guarantee of the
// runtime and checker instrumentation rests on it.
func BenchmarkDisabledInstruments(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(1)
	}
}

// BenchmarkEnabledInstruments is the live counterpart, for comparison.
func BenchmarkEnabledInstruments(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(1)
	}
}
