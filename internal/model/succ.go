package model

import (
	"fmt"
	"strings"

	"pnp/internal/pml"
)

// Transition is one executed step: the acting process, the edge it took,
// an optional rendezvous partner, the message involved (if any), and the
// resulting state. A non-empty Violation marks a failed assertion or a
// runtime evaluation error (such as division by zero); the Next state of a
// violating transition is the unchanged source state.
type Transition struct {
	Proc        int
	Edge        *pml.Edge
	Partner     int // rendezvous receiver pid, -1 if none
	PartnerEdge *pml.Edge
	Ch          ChanID // channel involved, -1 if none
	Msg         []int64
	Next        *State
	Violation   string
}

// env adapts (System, State, pid) to pml.EvalEnv. tmo is the system-wide
// timeout condition for this evaluation pass.
type env struct {
	s    *System
	st   *State
	proc int
	tmo  bool
}

func (e env) Global(i int) int64 { return e.st.Globals[i] }
func (e env) Local(i int) int64  { return e.st.Locals[e.proc][i] }
func (e env) Pid() int64         { return int64(e.proc) }
func (e env) Timeout() bool      { return e.tmo }

func (e env) ChanLen(ref pml.ChanRef) int {
	id := e.s.resolveChanFor(e.s.insts[e.proc], ref)
	w := len(e.s.shapes[id].fields)
	return len(e.st.Chans[id]) / w
}

func (e env) ChanCap(ref pml.ChanRef) int {
	id := e.s.resolveChanFor(e.s.insts[e.proc], ref)
	return e.s.shapes[id].cap
}

// Successors computes every transition enabled in st, honoring atomic
// sections (while a process holds atomicity and can move, only it moves)
// and Spin's timeout semantics: timeout-guarded transitions become
// executable exactly when nothing else in the system is.
func (s *System) Successors(st *State) []Transition {
	return s.SuccessorsAppend(st, nil, nil)
}

// SuccessorsAppend is the allocation-lean form of Successors used by the
// parallel explorer: transitions are appended to out (which callers
// reuse across expansions) and successor states draw their storage from
// the per-worker arena. Both a nil arena and a nil out are valid.
func (s *System) SuccessorsAppend(st *State, a *Arena, out []Transition) []Transition {
	base := len(out)
	out = s.successorsPass(st, false, a, out)
	if len(out) == base {
		out = s.successorsPass(st, true, a, out)
	}
	return out
}

func (s *System) successorsPass(st *State, tmo bool, a *Arena, out []Transition) []Transition {
	if st.Atomic >= 0 {
		return s.procSuccessors(st, int(st.Atomic), tmo, a, out)
	}
	for p := range s.insts {
		out = s.procSuccessors(st, p, tmo, a, out)
	}
	return out
}

// AmpleSuccessors attempts a partial-order reduction: when some process's
// current control location offers only Local edges (process-private
// guards, assignments, skips), its transitions are independent of every
// other process and invisible to global properties, so exploring only
// that process's moves preserves all safety verdicts (the checker adds
// the cycle proviso). It returns (transitions, true) when the reduction
// applies, or (nil, false) for full expansion.
func (s *System) AmpleSuccessors(st *State) ([]Transition, bool) {
	if st.Atomic >= 0 {
		return nil, false // atomic execution is already exclusive
	}
	for p := range s.insts {
		node := &s.insts[p].Proc.Nodes[st.PCs[p]]
		if len(node.Edges) == 0 {
			continue
		}
		allLocal := true
		for ei := range node.Edges {
			if !node.Edges[ei].Local {
				allLocal = false
				break
			}
		}
		if !allLocal {
			continue
		}
		if trs := s.procSuccessors(st, p, false, nil, nil); len(trs) > 0 {
			return trs, true
		}
	}
	return nil, false
}

// procSuccessors appends the transitions process p can take from st.
// Else edges fire only when no sibling edge is executable.
func (s *System) procSuccessors(st *State, p int, tmo bool, a *Arena, out []Transition) []Transition {
	node := &s.insts[p].Proc.Nodes[st.PCs[p]]
	anyEnabled := false
	for ei := range node.Edges {
		e := &node.Edges[ei]
		if e.Kind == pml.EdgeElse {
			continue
		}
		// A rendezvous receive is enabled when a matching sender is ready
		// but fires via the sender's pairing, so enabledness must be
		// checked independently of whether this side produced transitions.
		if s.edgeEnabled(st, p, e, tmo) {
			anyEnabled = true
		}
		out = s.execEdge(st, p, e, tmo, a, out)
	}
	if anyEnabled {
		return out
	}
	for ei := range node.Edges {
		e := &node.Edges[ei]
		if e.Kind == pml.EdgeElse {
			out = append(out, s.advance(st, p, e, -1, nil, -1, nil, a))
		}
	}
	return out
}

// execEdge appends the transitions from executing one (non-else) edge.
func (s *System) execEdge(st *State, p int, e *pml.Edge, tmo bool, a *Arena, out []Transition) []Transition {
	ev := env{s: s, st: st, proc: p, tmo: tmo}
	switch e.Kind {
	case pml.EdgeGuard:
		v, err := pml.Eval(e.Cond, ev)
		if err != nil {
			return append(out, s.violate(st, p, e, err.Error()))
		}
		if v == 0 {
			return out
		}
		return append(out, s.advance(st, p, e, -1, nil, -1, nil, a))
	case pml.EdgeSkip:
		return append(out, s.advance(st, p, e, -1, nil, -1, nil, a))
	case pml.EdgeAssert:
		v, err := pml.Eval(e.Cond, ev)
		if err != nil {
			return append(out, s.violate(st, p, e, err.Error()))
		}
		if v == 0 {
			return append(out, s.violate(st, p, e, "assertion violated"))
		}
		return append(out, s.advance(st, p, e, -1, nil, -1, nil, a))
	case pml.EdgeAssign:
		v, err := pml.Eval(e.RHS, ev)
		if err != nil {
			return append(out, s.violate(st, p, e, err.Error()))
		}
		ref := e.Var
		if e.VarIdx != nil {
			i, err := pml.Eval(e.VarIdx, ev)
			if err != nil {
				return append(out, s.violate(st, p, e, err.Error()))
			}
			if i < 0 || i >= int64(e.VarLen) {
				return append(out, s.violate(st, p, e, pml.ErrIndexOutOfRange.Error()))
			}
			ref.Idx += int(i)
		}
		next := st.clone(a)
		storeVar(next, p, ref, v)
		next.PCs[p] = int32(e.Dst)
		s.normalizeAtomic(next, p)
		return append(out, Transition{Proc: p, Edge: e, Partner: -1, Ch: -1, Next: next})
	case pml.EdgeSend:
		return s.execSend(st, p, e, tmo, a, out)
	case pml.EdgeRecv:
		return s.execRecv(st, p, e, tmo, a, out)
	default:
		return append(out, s.violate(st, p, e, fmt.Sprintf("internal: unexpected edge kind %d", e.Kind)))
	}
}

func (s *System) execSend(st *State, p int, e *pml.Edge, tmo bool, a *Arena, out []Transition) []Transition {
	ev := env{s: s, st: st, proc: p, tmo: tmo}
	id := s.resolveChanFor(s.insts[p], e.Ch)
	shape := &s.shapes[id]
	vals := make([]int64, len(e.SendArgs))
	for i, arg := range e.SendArgs {
		v, err := pml.Eval(arg, ev)
		if err != nil {
			return append(out, s.violate(st, p, e, err.Error()))
		}
		vals[i] = shape.fields[i].Truncate(v)
	}
	if shape.cap == 0 {
		return s.rendezvous(st, p, e, id, vals, tmo, a, out)
	}
	w := len(shape.fields)
	if len(st.Chans[id])/w >= shape.cap {
		return out // buffer full: blocked
	}
	next := st.clone(a)
	if e.Sorted {
		next.Chans[id] = sortedInsert(next.Chans[id], vals, w)
	} else {
		next.Chans[id] = append(next.Chans[id], vals...)
	}
	next.PCs[p] = int32(e.Dst)
	s.normalizeAtomic(next, p)
	return append(out, Transition{Proc: p, Edge: e, Partner: -1, Ch: ChanID(id), Msg: vals, Next: next})
}

// rendezvous pairs a send on a zero-capacity channel with every matching
// receive another process is currently offering; each pairing is one
// combined transition.
func (s *System) rendezvous(st *State, p int, e *pml.Edge, id int, vals []int64, tmo bool, a *Arena, out []Transition) []Transition {
	for q := range s.insts {
		if q == p {
			continue
		}
		node := &s.insts[q].Proc.Nodes[st.PCs[q]]
		for ei := range node.Edges {
			er := &node.Edges[ei]
			if er.Kind != pml.EdgeRecv {
				continue
			}
			if s.resolveChanFor(s.insts[q], er.Ch) != id {
				continue
			}
			ok, err := s.patternMatches(st, q, er.RecvArgs, vals, tmo)
			if err != nil {
				out = append(out, s.violate(st, q, er, err.Error()))
				continue
			}
			if !ok {
				continue
			}
			next := st.clone(a)
			applyBinds(next, q, er.RecvArgs, vals)
			next.PCs[p] = int32(e.Dst)
			next.PCs[q] = int32(er.Dst)
			s.normalizeAtomic(next, p)
			out = append(out, Transition{
				Proc: p, Edge: e, Partner: q, PartnerEdge: er,
				Ch: ChanID(id), Msg: vals, Next: next,
			})
		}
	}
	return out
}

func (s *System) execRecv(st *State, p int, e *pml.Edge, tmo bool, a *Arena, out []Transition) []Transition {
	id := s.resolveChanFor(s.insts[p], e.Ch)
	shape := &s.shapes[id]
	if shape.cap == 0 {
		return out // rendezvous receives execute via the sender's pairing
	}
	w := len(shape.fields)
	n := len(st.Chans[id]) / w
	if n == 0 {
		return out
	}
	limit := 1
	if e.Random {
		limit = n
	}
	for i := 0; i < limit; i++ {
		msg := st.Chans[id][i*w : (i+1)*w]
		ok, err := s.patternMatches(st, p, e.RecvArgs, msg, tmo)
		if err != nil {
			return append(out, s.violate(st, p, e, err.Error()))
		}
		if !ok {
			continue
		}
		vals := append([]int64(nil), msg...)
		next := st.clone(a)
		applyBinds(next, p, e.RecvArgs, vals)
		next.Chans[id] = append(next.Chans[id][:i*w], next.Chans[id][(i+1)*w:]...)
		next.PCs[p] = int32(e.Dst)
		s.normalizeAtomic(next, p)
		return append(out, Transition{Proc: p, Edge: e, Partner: -1, Ch: ChanID(id), Msg: vals, Next: next})
	}
	return out
}

// patternMatches checks a receive pattern against message values without
// mutating anything. Match expressions evaluate in the receiver's context.
func (s *System) patternMatches(st *State, p int, args []pml.RRecvArg, vals []int64, tmo bool) (bool, error) {
	ev := env{s: s, st: st, proc: p, tmo: tmo}
	for i, a := range args {
		if a.Kind != pml.RArgMatch {
			continue
		}
		want, err := pml.Eval(a.X, ev)
		if err != nil {
			return false, err
		}
		if want != vals[i] {
			return false, nil
		}
	}
	return true, nil
}

// applyBinds stores message fields into bind targets, truncating to the
// target variable's type.
func applyBinds(st *State, p int, args []pml.RRecvArg, vals []int64) {
	for i, a := range args {
		if a.Kind != pml.RArgBind {
			continue
		}
		storeVar(st, p, a.Var, vals[i])
	}
}

func storeVar(st *State, p int, ref pml.VarRef, v int64) {
	v = ref.Type.Truncate(v)
	if ref.Global {
		st.Globals[ref.Idx] = v
	} else {
		st.Locals[p][ref.Idx] = v
	}
}

// sortedInsert inserts msg into buf (flattened messages of width w) before
// the first message that compares strictly greater, preserving insertion
// order among equal messages — Spin's sorted-send semantics.
func sortedInsert(buf []int64, msg []int64, w int) []int64 {
	n := len(buf) / w
	pos := n
	for i := 0; i < n; i++ {
		if lexLess(msg, buf[i*w:(i+1)*w]) {
			pos = i
			break
		}
	}
	out := make([]int64, 0, len(buf)+w)
	out = append(out, buf[:pos*w]...)
	out = append(out, msg...)
	out = append(out, buf[pos*w:]...)
	return out
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// advance clones st, moves p along e, and renormalizes atomicity.
func (s *System) advance(st *State, p int, e *pml.Edge, partner int, pe *pml.Edge, ch ChanID, msg []int64, a *Arena) Transition {
	next := st.clone(a)
	next.PCs[p] = int32(e.Dst)
	s.normalizeAtomic(next, p)
	return Transition{Proc: p, Edge: e, Partner: partner, PartnerEdge: pe, Ch: ch, Msg: msg, Next: next}
}

func (s *System) violate(st *State, p int, e *pml.Edge, msg string) Transition {
	return Transition{Proc: p, Edge: e, Partner: -1, Ch: -1, Next: st, Violation: msg}
}

// normalizeAtomic sets st.Atomic canonically: the actor keeps atomicity
// only if its new location is inside an atomic region and it can initiate
// at least one transition there (Spin's semantics: a blocked atomic
// sequence loses exclusivity). A rendezvous receive does not count — it
// fires via the sending process, which exclusivity would lock out — so
// atomicity is released at receive points and re-acquired afterwards.
func (s *System) normalizeAtomic(st *State, actor int) {
	node := &s.insts[actor].Proc.Nodes[st.PCs[actor]]
	if node.Atomic && s.procCanInitiate(st, actor) {
		st.Atomic = int32(actor)
	} else {
		st.Atomic = -1
	}
}

// procCanInitiate reports whether process p can itself drive a transition
// from st: like procHasEnabled, but rendezvous receives (sender-initiated)
// do not count, and neither does an else edge suppressed only by such
// receives.
func (s *System) procCanInitiate(st *State, p int) bool {
	node := &s.insts[p].Proc.Nodes[st.PCs[p]]
	hasElse := false
	anyEnabled := false
	for ei := range node.Edges {
		e := &node.Edges[ei]
		if e.Kind == pml.EdgeElse {
			hasElse = true
			continue
		}
		if !s.edgeEnabled(st, p, e, false) {
			continue
		}
		anyEnabled = true
		if e.Kind == pml.EdgeRecv {
			id := s.resolveChanFor(s.insts[p], e.Ch)
			if s.shapes[id].cap == 0 {
				continue // sender-initiated: p cannot drive it
			}
		}
		return true
	}
	return hasElse && !anyEnabled
}

// ProcEnabled reports whether process p has any executable edge in st —
// used by the checker's weak-fairness construction.
func (s *System) ProcEnabled(st *State, p int) bool {
	return s.procHasEnabled(st, p)
}

// procHasEnabled reports whether process p has any executable edge in st.
// A node with an else edge always does.
func (s *System) procHasEnabled(st *State, p int) bool {
	node := &s.insts[p].Proc.Nodes[st.PCs[p]]
	hasElse := false
	for ei := range node.Edges {
		e := &node.Edges[ei]
		if e.Kind == pml.EdgeElse {
			hasElse = true
			continue
		}
		if s.edgeEnabled(st, p, e, false) {
			return true
		}
	}
	return hasElse
}

// edgeEnabled conservatively reports executability of a non-else edge.
// Evaluation errors count as enabled so that executing the edge surfaces
// the violation.
func (s *System) edgeEnabled(st *State, p int, e *pml.Edge, tmo bool) bool {
	ev := env{s: s, st: st, proc: p, tmo: tmo}
	switch e.Kind {
	case pml.EdgeGuard:
		v, err := pml.Eval(e.Cond, ev)
		return err != nil || v != 0
	case pml.EdgeAssign, pml.EdgeAssert, pml.EdgeSkip:
		return true
	case pml.EdgeSend:
		id := s.resolveChanFor(s.insts[p], e.Ch)
		shape := &s.shapes[id]
		if shape.cap > 0 {
			w := len(shape.fields)
			return len(st.Chans[id])/w < shape.cap
		}
		return len(s.rendezvousPartners(st, p, e, id, tmo)) > 0
	case pml.EdgeRecv:
		id := s.resolveChanFor(s.insts[p], e.Ch)
		shape := &s.shapes[id]
		if shape.cap == 0 {
			return s.rendezvousSenderReady(st, p, e, id, tmo)
		}
		w := len(shape.fields)
		n := len(st.Chans[id]) / w
		if n == 0 {
			return false
		}
		limit := 1
		if e.Random {
			limit = n
		}
		for i := 0; i < limit; i++ {
			ok, err := s.patternMatches(st, p, e.RecvArgs, st.Chans[id][i*w:(i+1)*w], tmo)
			if err != nil || ok {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// rendezvousPartners lists the pids currently offering a matching receive
// for a rendezvous send.
func (s *System) rendezvousPartners(st *State, p int, e *pml.Edge, id int, tmo bool) []int {
	ev := env{s: s, st: st, proc: p, tmo: tmo}
	vals := make([]int64, len(e.SendArgs))
	for i, a := range e.SendArgs {
		v, err := pml.Eval(a, ev)
		if err != nil {
			return []int{-1} // force "enabled": execution will surface the error
		}
		vals[i] = s.shapes[id].fields[i].Truncate(v)
	}
	var out []int
	for q := range s.insts {
		if q == p {
			continue
		}
		node := &s.insts[q].Proc.Nodes[st.PCs[q]]
		for ei := range node.Edges {
			er := &node.Edges[ei]
			if er.Kind != pml.EdgeRecv || s.resolveChanFor(s.insts[q], er.Ch) != id {
				continue
			}
			ok, err := s.patternMatches(st, q, er.RecvArgs, vals, tmo)
			if err != nil || ok {
				out = append(out, q)
				break
			}
		}
	}
	return out
}

// rendezvousSenderReady reports whether some process offers a rendezvous
// send on channel id whose values match p's receive pattern. Used for
// else-semantics and atomic renormalization on the receiving side.
func (s *System) rendezvousSenderReady(st *State, p int, e *pml.Edge, id int, tmo bool) bool {
	for q := range s.insts {
		if q == p {
			continue
		}
		node := &s.insts[q].Proc.Nodes[st.PCs[q]]
		for ei := range node.Edges {
			es := &node.Edges[ei]
			if es.Kind != pml.EdgeSend || s.resolveChanFor(s.insts[q], es.Ch) != id {
				continue
			}
			ev := env{s: s, st: st, proc: q, tmo: tmo}
			vals := make([]int64, len(es.SendArgs))
			bad := false
			for i, a := range es.SendArgs {
				v, err := pml.Eval(a, ev)
				if err != nil {
					bad = true
					break
				}
				vals[i] = s.shapes[id].fields[i].Truncate(v)
			}
			if bad {
				return true
			}
			ok, err := s.patternMatches(st, p, e.RecvArgs, vals, tmo)
			if err != nil || ok {
				return true
			}
		}
	}
	return false
}

// FormatMsg renders a transition's message values, using mtype constant
// names for mtype-typed fields, e.g. "SEND_SUCC,2".
func (s *System) FormatMsg(tr Transition) string {
	if tr.Msg == nil {
		return ""
	}
	var b strings.Builder
	for i, v := range tr.Msg {
		if i > 0 {
			b.WriteByte(',')
		}
		if tr.Ch >= 0 && i < len(s.shapes[tr.Ch].fields) && s.shapes[tr.Ch].fields[i] == pml.TypeMtype {
			b.WriteString(s.Prog.MtypeName(v))
		} else {
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return b.String()
}

// ProcName returns the display name of instance i.
func (s *System) ProcName(i int) string {
	if i < 0 || i >= len(s.insts) {
		return ""
	}
	return s.insts[i].Name
}

// FormatTransition renders a transition for counterexample traces, e.g.
// "Car[2] enter! REQ,2".
func (s *System) FormatTransition(tr Transition) string {
	var b strings.Builder
	b.WriteString(s.insts[tr.Proc].Name)
	b.WriteByte(' ')
	b.WriteString(tr.Edge.Label)
	if msg := s.FormatMsg(tr); msg != "" {
		b.WriteByte(' ')
		b.WriteString(msg)
	}
	if tr.Partner >= 0 {
		b.WriteString(" -> ")
		b.WriteString(s.insts[tr.Partner].Name)
	}
	if tr.Violation != "" {
		b.WriteString(" [")
		b.WriteString(tr.Violation)
		b.WriteByte(']')
	}
	return b.String()
}
