package model

import (
	"bytes"
	"testing"
)

const componentsSrc = `
byte x;
byte y;
chan c = [2] of { byte, byte };
chan d = [1] of { byte };
active proctype P() {
	byte i;
	do
	:: i < 3 -> c!i,i; i = i + 1
	:: else -> break
	od
}
active proctype Q() {
	byte a; byte b;
	do
	:: c?a,b -> x = a; d!b
	:: x >= 2 -> break
	od
}
active proctype R() {
	byte v;
	do
	:: d?v -> y = v
	:: y >= 2 -> break
	od
}`

// collectStates walks a few BFS levels and returns a mixed bag of
// reachable states to exercise encodings with non-empty channels and
// varied locals.
func collectStates(t *testing.T, s *System, max int) []*State {
	t.Helper()
	seen := map[string]bool{}
	frontier := []*State{s.InitialState()}
	var out []*State
	for len(frontier) > 0 && len(out) < max {
		var next []*State
		for _, st := range frontier {
			if seen[st.Key()] {
				continue
			}
			seen[st.Key()] = true
			out = append(out, st)
			if len(out) >= max {
				break
			}
			for _, tr := range s.Successors(st) {
				if tr.Violation == "" {
					next = append(next, tr.Next)
				}
			}
		}
		frontier = next
	}
	return out
}

// Hash64 is pinned to Fingerprint: the dedupe of the checker's private
// FNV copies relies on one hash of the canonical encoding.
func TestHash64MatchesFingerprint(t *testing.T) {
	s := mustSystem(t, componentsSrc)
	for _, st := range collectStates(t, s, 200) {
		if got, want := Hash64(st.AppendKey(nil)), st.Fingerprint(); got != want {
			t.Fatalf("Hash64(AppendKey) = %#x, Fingerprint = %#x for %q", got, want, st.Key())
		}
	}
	var w Hash64Writer
	w.Write([]byte("pnp"))
	if w.Sum64() != Hash64([]byte("pnp")) {
		t.Fatalf("Hash64Writer diverges from Hash64")
	}
	w2 := &Hash64Writer{}
	w2.Write([]byte("pn"))
	w2.Write([]byte("p"))
	if w2.Sum64() != w.Sum64() {
		t.Fatalf("Hash64Writer is not streaming-consistent")
	}
}

// AppendComponentKeys must concatenate to exactly the AppendKey bytes
// (so hashing the whole buffer still equals Fingerprint) with
// monotonically increasing section ends covering the whole encoding,
// and ComponentEnds must recompute the same split from the bare bytes.
func TestAppendComponentKeysMatchesAppendKey(t *testing.T) {
	s := mustSystem(t, componentsSrc)
	shape := s.InitialState()
	for _, st := range collectStates(t, s, 200) {
		enc, ends := st.AppendComponentKeys(nil, nil)
		if !bytes.Equal(enc, st.AppendKey(nil)) {
			t.Fatalf("component encoding differs from AppendKey for %q", st.Key())
		}
		if len(ends) != st.NumComponents() {
			t.Fatalf("got %d sections, want %d", len(ends), st.NumComponents())
		}
		prev := 0
		for _, e := range ends {
			if e < prev || e > len(enc) {
				t.Fatalf("bad section end %d (prev %d, len %d)", e, prev, len(enc))
			}
			prev = e
		}
		if ends[len(ends)-1] != len(enc) {
			t.Fatalf("last end %d does not cover encoding of %d bytes", ends[len(ends)-1], len(enc))
		}
		re, err := ComponentEnds(shape, enc, nil)
		if err != nil {
			t.Fatalf("ComponentEnds: %v", err)
		}
		if len(re) != len(ends) {
			t.Fatalf("ComponentEnds returned %d sections, want %d", len(re), len(ends))
		}
		for i := range re {
			if re[i] != ends[i] {
				t.Fatalf("section %d: ComponentEnds %d, AppendComponentKeys %d", i, re[i], ends[i])
			}
		}
	}
}

func TestComponentEndsRejectsGarbage(t *testing.T) {
	s := mustSystem(t, componentsSrc)
	shape := s.InitialState()
	enc, _ := shape.AppendComponentKeys(nil, nil)
	if _, err := ComponentEnds(shape, enc[:len(enc)-1], nil); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := ComponentEnds(shape, append(append([]byte{}, enc...), 0), nil); err == nil {
		t.Fatal("encoding with trailing bytes accepted")
	}
}

// Appending into reused buffers must not disturb earlier content.
func TestAppendComponentKeysReusesBuffers(t *testing.T) {
	s := mustSystem(t, componentsSrc)
	sts := collectStates(t, s, 2)
	if len(sts) < 2 {
		t.Fatal("need two states")
	}
	buf, ends := sts[0].AppendComponentKeys(nil, nil)
	buf2, ends2 := sts[1].AppendComponentKeys(buf[:0], ends[:0])
	if !bytes.Equal(buf2, sts[1].AppendKey(nil)) {
		t.Fatal("reused buffer produced wrong encoding")
	}
	if ends2[len(ends2)-1] != len(buf2) {
		t.Fatal("reused ends wrong")
	}
}
