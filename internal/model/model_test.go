package model

import (
	"strings"
	"testing"

	"pnp/internal/pml"
)

func mustSystem(t *testing.T, src string) *System {
	t.Helper()
	prog, err := pml.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := New(prog)
	if err := s.SpawnActive(); err != nil {
		t.Fatalf("SpawnActive: %v", err)
	}
	return s
}

// runToQuiescence repeatedly takes the only enabled transition, failing on
// nondeterminism, and returns the final state. Useful for deterministic
// straight-line models.
func runToQuiescence(t *testing.T, s *System, st *State, maxSteps int) *State {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		trs := s.Successors(st)
		if len(trs) == 0 {
			return st
		}
		if len(trs) > 1 {
			t.Fatalf("step %d: nondeterministic (%d transitions)", i, len(trs))
		}
		if trs[0].Violation != "" {
			t.Fatalf("step %d: violation: %s", i, trs[0].Violation)
		}
		st = trs[0].Next
	}
	t.Fatalf("did not quiesce in %d steps", maxSteps)
	return nil
}

func globalValue(t *testing.T, s *System, st *State, name string) int64 {
	t.Helper()
	for i, v := range s.Prog.GlobalVars {
		if v.Name == name {
			return st.Globals[i]
		}
	}
	t.Fatalf("no global %q", name)
	return 0
}

func TestStraightLineExecution(t *testing.T) {
	s := mustSystem(t, `
byte x;
active proctype P() {
	x = 1;
	x = x + 41
}`)
	st := runToQuiescence(t, s, s.InitialState(), 10)
	if got := globalValue(t, s, st, "x"); got != 42 {
		t.Errorf("x = %d, want 42", got)
	}
	if !s.AtEndState(st, 0) {
		t.Errorf("process not at end state after completion")
	}
}

func TestBufferedSendRecv(t *testing.T) {
	s := mustSystem(t, `
chan c = [2] of { byte, byte };
byte got1, got2;
active proctype Snd() {
	c!1,2;
	c!3,4
}
active proctype Rcv() {
	c?got1,got2
}`)
	st := s.InitialState()
	// Sender can always run; drive sender twice then receiver.
	for i := 0; i < 3; i++ {
		trs := s.Successors(st)
		if len(trs) == 0 {
			t.Fatalf("step %d: no transitions", i)
		}
		st = trs[0].Next
	}
	// After send,send,(send-blocked so recv) order depends; just explore
	// until quiescent and check the receiver got the first message.
	for {
		trs := s.Successors(st)
		if len(trs) == 0 {
			break
		}
		st = trs[0].Next
	}
	if globalValue(t, s, st, "got1") != 1 || globalValue(t, s, st, "got2") != 2 {
		t.Errorf("received %d,%d; want 1,2 (FIFO)",
			globalValue(t, s, st, "got1"), globalValue(t, s, st, "got2"))
	}
}

func TestSendBlocksWhenFull(t *testing.T) {
	s := mustSystem(t, `
chan c = [1] of { byte };
active proctype Snd() {
	c!1;
	c!2
}`)
	st := s.InitialState()
	trs := s.Successors(st)
	if len(trs) != 1 {
		t.Fatalf("initial transitions = %d", len(trs))
	}
	st = trs[0].Next
	if trs := s.Successors(st); len(trs) != 0 {
		t.Errorf("send on full channel should block, got %d transitions", len(trs))
	}
}

func TestRendezvous(t *testing.T) {
	s := mustSystem(t, `
chan c = [0] of { byte };
byte got;
active proctype Snd() {
	c!7
}
active proctype Rcv() {
	c?got
}`)
	st := s.InitialState()
	trs := s.Successors(st)
	if len(trs) != 1 {
		t.Fatalf("rendezvous transitions = %d, want 1 combined", len(trs))
	}
	tr := trs[0]
	if tr.Partner != 1 {
		t.Errorf("partner = %d, want 1", tr.Partner)
	}
	st = tr.Next
	if globalValue(t, s, st, "got") != 7 {
		t.Errorf("got = %d, want 7", globalValue(t, s, st, "got"))
	}
	if !s.AtEndState(st, 0) || !s.AtEndState(st, 1) {
		t.Errorf("both processes should be done")
	}
}

func TestRendezvousBlocksWithoutPartner(t *testing.T) {
	s := mustSystem(t, `
chan c = [0] of { byte };
active proctype Snd() { c!7 }`)
	if trs := s.Successors(s.InitialState()); len(trs) != 0 {
		t.Errorf("rendezvous send with no receiver should block, got %d", len(trs))
	}
}

func TestRendezvousPatternMatch(t *testing.T) {
	s := mustSystem(t, `
mtype = { OK, FAIL };
chan c = [0] of { mtype, byte };
byte who;
active proctype Snd() {
	c!OK,5
}
active proctype WrongRcv() {
	byte x;
	c?FAIL,x
}
active proctype RightRcv() {
	c?OK,who
}`)
	st := s.InitialState()
	trs := s.Successors(st)
	if len(trs) != 1 {
		t.Fatalf("transitions = %d, want 1 (only matching receiver)", len(trs))
	}
	if trs[0].Partner != 2 {
		t.Errorf("partner = %d, want RightRcv (pid 2)", trs[0].Partner)
	}
	if globalValue(t, s, trs[0].Next, "who") != 5 {
		t.Errorf("who = %d, want 5", globalValue(t, s, trs[0].Next, "who"))
	}
}

func TestEvalMatchAgainstPid(t *testing.T) {
	// The paper's ports match signals tagged with their own pid via
	// eval(_pid).
	s := mustSystem(t, `
chan c = [2] of { byte };
byte winner = 99;
active proctype A() {
	c?eval(_pid);
	winner = _pid
}
active proctype B() {
	c?eval(_pid);
	winner = _pid
}
active proctype Producer() {
	c!1
}`)
	st := s.InitialState()
	// Producer sends 1; only B (pid 1) may receive it.
	var final *State
	for {
		trs := s.Successors(st)
		if len(trs) == 0 {
			final = st
			break
		}
		if len(trs) > 1 {
			t.Fatalf("unexpected nondeterminism: %d transitions", len(trs))
		}
		st = trs[0].Next
	}
	if globalValue(t, s, final, "winner") != 1 {
		t.Errorf("winner = %d, want 1 (pid-tagged receive)", globalValue(t, s, final, "winner"))
	}
}

func TestRandomReceiveSkipsNonMatching(t *testing.T) {
	s := mustSystem(t, `
mtype = { A, B };
chan c = [4] of { mtype };
byte done;
active proctype P() {
	c!A;
	c!B;
	c??B;
	done = 1
}`)
	st := runToQuiescence(t, s, s.InitialState(), 10)
	if globalValue(t, s, st, "done") != 1 {
		t.Errorf("?? failed to retrieve non-head matching message")
	}
	// The remaining message must be A.
	id, _ := s.ChannelByName("c")
	if len(st.Chans[id]) != 1 || st.Chans[id][0] != 1 {
		t.Errorf("channel contents = %v, want [A=1]", st.Chans[id])
	}
}

func TestPlainReceiveChecksHeadOnly(t *testing.T) {
	s := mustSystem(t, `
mtype = { A, B };
chan c = [4] of { mtype };
active proctype P() {
	c!A;
	c?B
}`)
	st := s.InitialState()
	trs := s.Successors(st)
	st = trs[0].Next // send A
	if trs := s.Successors(st); len(trs) != 0 {
		t.Errorf("c?B with head A should block, got %d transitions", len(trs))
	}
}

func TestSortedSend(t *testing.T) {
	s := mustSystem(t, `
chan c = [4] of { byte };
active proctype P() {
	c!!3;
	c!!1;
	c!!2;
	c!!1
}`)
	st := runToQuiescence(t, s, s.InitialState(), 10)
	id, _ := s.ChannelByName("c")
	want := []int64{1, 1, 2, 3}
	got := st.Chans[id]
	if len(got) != len(want) {
		t.Fatalf("contents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("contents = %v, want %v", got, want)
			break
		}
	}
}

func TestElseOnlyWhenBlocked(t *testing.T) {
	s := mustSystem(t, `
chan c = [1] of { byte };
byte path;
active proctype P() {
	if
	:: c?path
	:: else -> path = 9
	fi
}`)
	st := s.InitialState()
	if trs := s.Successors(st); len(trs) != 1 {
		t.Fatalf("transitions = %d, want 1 (else only)", len(trs))
	}
	st = runToQuiescence(t, s, st, 10)
	if globalValue(t, s, st, "path") != 9 {
		t.Errorf("else branch not taken")
	}
}

func TestElseSuppressedWhenSiblingEnabled(t *testing.T) {
	s := mustSystem(t, `
byte path;
active proctype P() {
	if
	:: path == 0 -> path = 1
	:: else -> path = 9
	fi
}`)
	st := s.InitialState()
	if trs := s.Successors(st); len(trs) != 1 {
		t.Fatalf("transitions = %d, want 1", len(trs))
	}
	st = runToQuiescence(t, s, st, 10)
	if globalValue(t, s, st, "path") != 1 {
		t.Errorf("else taken although sibling was enabled")
	}
}

func TestElseWithRendezvousSibling(t *testing.T) {
	// else must be suppressed when a rendezvous partner is ready.
	s := mustSystem(t, `
chan c = [0] of { byte };
byte path;
active proctype Rcv() {
	if
	:: c?path
	:: else -> path = 9
	fi
}
active proctype Snd() {
	c!5
}`)
	st := s.InitialState()
	for _, tr := range s.Successors(st) {
		if tr.Proc == 0 && tr.Edge.Kind == pml.EdgeElse {
			t.Errorf("else fired although a rendezvous sender was ready")
		}
	}
}

func TestAtomicExcludesInterleaving(t *testing.T) {
	s := mustSystem(t, `
byte x;
active proctype A() {
	atomic { x = 1; x = x + 1; x = x * 2 }
}
active proctype B() {
	x = 100
}`)
	// From the state after A's first atomic step, only A may move.
	st := s.InitialState()
	var afterFirst *State
	for _, tr := range s.Successors(st) {
		if tr.Proc == 0 {
			afterFirst = tr.Next
		}
	}
	if afterFirst == nil {
		t.Fatal("A could not start")
	}
	if afterFirst.Atomic != 0 {
		t.Fatalf("atomic token = %d, want 0", afterFirst.Atomic)
	}
	trs := s.Successors(afterFirst)
	for _, tr := range trs {
		if tr.Proc != 0 {
			t.Errorf("process %d moved inside A's atomic section", tr.Proc)
		}
	}
}

func TestAtomicReleasesWhenBlocked(t *testing.T) {
	s := mustSystem(t, `
chan c = [0] of { byte };
byte x;
active proctype A() {
	atomic { x = 1; c!5 }
}
active proctype B() {
	byte y;
	x == 1 -> c?y
}`)
	st := s.InitialState()
	// A's first step enters the atomic region but then blocks on the
	// rendezvous (B is not yet at the receive), so atomicity is lost.
	var after *State
	for _, tr := range s.Successors(st) {
		if tr.Proc == 0 {
			after = tr.Next
		}
	}
	if after == nil {
		t.Fatal("A could not start")
	}
	if after.Atomic != -1 {
		t.Errorf("atomic token = %d, want released (-1)", after.Atomic)
	}
	// B must now be able to move.
	moved := false
	for _, tr := range s.Successors(after) {
		if tr.Proc == 1 {
			moved = true
		}
	}
	if !moved {
		t.Errorf("B cannot move after A's atomic section blocked")
	}
}

func TestAssertViolation(t *testing.T) {
	s := mustSystem(t, `
byte x;
active proctype P() {
	x = 5;
	assert(x == 4)
}`)
	st := s.InitialState()
	st = s.Successors(st)[0].Next
	trs := s.Successors(st)
	if len(trs) != 1 || trs[0].Violation == "" {
		t.Fatalf("expected assertion violation, got %+v", trs)
	}
	if !strings.Contains(trs[0].Violation, "assertion") {
		t.Errorf("violation = %q", trs[0].Violation)
	}
}

func TestDivisionByZeroViolation(t *testing.T) {
	s := mustSystem(t, `
byte x, y;
active proctype P() {
	y = 5 / x
}`)
	trs := s.Successors(s.InitialState())
	if len(trs) != 1 || !strings.Contains(trs[0].Violation, "division by zero") {
		t.Fatalf("expected division-by-zero violation, got %+v", trs)
	}
}

func TestByteTruncationOnStore(t *testing.T) {
	s := mustSystem(t, `
byte x;
active proctype P() {
	x = 255;
	x = x + 1
}`)
	st := runToQuiescence(t, s, s.InitialState(), 10)
	if got := globalValue(t, s, st, "x"); got != 0 {
		t.Errorf("x = %d, want 0 (byte wraps)", got)
	}
}

func TestSpawnErrors(t *testing.T) {
	prog, err := pml.CompileSource(`
chan g = [1] of { byte };
proctype P(chan c; byte n) { c!n }
proctype Q(chan c) { c!1,2 }
`)
	if err != nil {
		t.Fatal(err)
	}
	s := New(prog)
	g, _ := s.ChannelByName("g")

	if _, err := s.Spawn("Nope"); err == nil {
		t.Error("unknown proctype not rejected")
	}
	if _, err := s.Spawn("P", Chan(g)); err == nil {
		t.Error("wrong arg count not rejected")
	}
	if _, err := s.Spawn("P", Int(1), Chan(g)); err == nil {
		t.Error("arg kind mismatch not rejected")
	}
	if _, err := s.Spawn("Q", Chan(g)); err == nil {
		t.Error("channel arity mismatch through parameter not rejected")
	}
	if _, err := s.Spawn("P", Chan(g), Int(3)); err != nil {
		t.Errorf("valid spawn rejected: %v", err)
	}
}

func TestLocalChannelPerInstance(t *testing.T) {
	prog, err := pml.CompileSource(`
proctype P() {
	chan buf = [2] of { byte };
	buf!1
}`)
	if err != nil {
		t.Fatal(err)
	}
	s := New(prog)
	a, err := s.Spawn("P")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Spawn("P")
	if err != nil {
		t.Fatal(err)
	}
	if a.ChanBind[0] == b.ChanBind[0] {
		t.Errorf("instances share a local channel")
	}
	if s.NumChannels() != 2 {
		t.Errorf("NumChannels = %d, want 2", s.NumChannels())
	}
}

func TestStateKeyDistinguishesStates(t *testing.T) {
	s := mustSystem(t, `
chan c = [2] of { byte };
byte x;
active proctype P() {
	c!1; c!2; x = 1
}`)
	st := s.InitialState()
	seen := map[string]bool{st.Key(): true}
	for i := 0; i < 3; i++ {
		st = s.Successors(st)[0].Next
		k := st.Key()
		if seen[k] {
			t.Fatalf("state key collision at step %d", i)
		}
		seen[k] = true
	}
}

func TestStateKeyStable(t *testing.T) {
	s := mustSystem(t, `byte x; active proctype P() { x = 1 }`)
	st := s.InitialState()
	if st.Key() != st.Key() {
		t.Error("Key not deterministic")
	}
	st2 := s.InitialState()
	if st.Key() != st2.Key() {
		t.Error("equal states have different keys")
	}
}

func TestFormatTransition(t *testing.T) {
	s := mustSystem(t, `
mtype = { PING };
chan c = [1] of { mtype };
active proctype P() { c!PING }`)
	trs := s.Successors(s.InitialState())
	got := s.FormatTransition(trs[0])
	if !strings.Contains(got, "P[0]") || !strings.Contains(got, "c!") || !strings.Contains(got, "PING") {
		t.Errorf("FormatTransition = %q", got)
	}
}

func TestNondeterministicChoiceYieldsAllBranches(t *testing.T) {
	s := mustSystem(t, `
byte x;
active proctype P() {
	if
	:: x = 1
	:: x = 2
	:: x = 3
	fi
}`)
	trs := s.Successors(s.InitialState())
	if len(trs) != 3 {
		t.Fatalf("transitions = %d, want 3", len(trs))
	}
	vals := map[int64]bool{}
	for _, tr := range trs {
		vals[globalValue(t, s, tr.Next, "x")] = true
	}
	if !vals[1] || !vals[2] || !vals[3] {
		t.Errorf("branch values = %v", vals)
	}
}

func TestArraySemantics(t *testing.T) {
	s := mustSystem(t, `
byte a[3];
byte sum;
active proctype P() {
	byte i;
	do
	:: i < 3 -> a[i] = i + 10; i = i + 1
	:: else -> break
	od;
	sum = a[0] + a[1] + a[2]
}`)
	st := runToQuiescence(t, s, s.InitialState(), 40)
	if got := globalValue(t, s, st, "sum"); got != 33 {
		t.Errorf("sum = %d, want 33", got)
	}
}

func TestForLoopSemantics(t *testing.T) {
	s := mustSystem(t, `
byte a[5];
byte i, sum;
active proctype P() {
	for (i : 0 .. 4) {
		a[i] = i * 2
	};
	for (i : 0 .. 4) {
		sum = sum + a[i]
	}
}`)
	st := runToQuiescence(t, s, s.InitialState(), 120)
	if got := globalValue(t, s, st, "sum"); got != 20 {
		t.Errorf("sum = %d, want 20 (0+2+4+6+8)", got)
	}
}

func TestArrayOutOfBoundsIsViolation(t *testing.T) {
	s := mustSystem(t, `
byte a[2];
byte i;
active proctype P() {
	i = 5;
	a[i] = 1
}`)
	st := s.InitialState()
	st = s.Successors(st)[0].Next
	trs := s.Successors(st)
	if len(trs) != 1 || !strings.Contains(trs[0].Violation, "index out of range") {
		t.Fatalf("expected bounds violation, got %+v", trs)
	}
}

func TestArrayReadOutOfBoundsIsViolation(t *testing.T) {
	s := mustSystem(t, `
byte a[2];
byte x;
active proctype P() {
	x = a[7]
}`)
	trs := s.Successors(s.InitialState())
	if len(trs) != 1 || !strings.Contains(trs[0].Violation, "index out of range") {
		t.Fatalf("expected bounds violation, got %+v", trs)
	}
}

func TestTimeoutFiresOnlyWhenBlocked(t *testing.T) {
	// The receiver escapes via timeout once the system has nothing else
	// to do — Spin's timeout semantics.
	s := mustSystem(t, `
chan c = [0] of { byte };
byte escaped, got;
active proctype R() {
	do
	:: c?got
	:: timeout -> escaped = 1; break
	od
}
active proctype W() {
	byte x;
	x = 1;
	x = 2
}`)
	st := s.InitialState()
	// While W still has work, timeout must not fire.
	for i := 0; i < 2; i++ {
		trs := s.Successors(st)
		for _, tr := range trs {
			if tr.Proc == 0 {
				t.Fatalf("step %d: R moved while W was runnable (timeout fired early)", i)
			}
		}
		st = trs[0].Next
	}
	// Now only the timeout branch remains.
	st = runToQuiescence(t, s, st, 10)
	if globalValue(t, s, st, "escaped") != 1 {
		t.Error("timeout branch never fired after the system blocked")
	}
	if !s.AtEndState(st, 0) {
		t.Error("R did not terminate")
	}
}

func TestTimeoutPreventsDeadlockReport(t *testing.T) {
	s := mustSystem(t, `
chan c = [0] of { byte };
byte x;
active proctype P() {
	if
	:: c?x
	:: timeout -> x = 9
	fi
}`)
	st := runToQuiescence(t, s, s.InitialState(), 10)
	if globalValue(t, s, st, "x") != 9 {
		t.Errorf("x = %d, want 9 via timeout", globalValue(t, s, st, "x"))
	}
}

func TestMultipleRendezvousReceiversGiveMultipleTransitions(t *testing.T) {
	s := mustSystem(t, `
chan c = [0] of { byte };
byte r1, r2;
active proctype S() { c!1 }
active proctype R1() { c?r1 }
active proctype R2() { c?r2 }`)
	trs := s.Successors(s.InitialState())
	if len(trs) != 2 {
		t.Fatalf("transitions = %d, want 2 (one per receiver)", len(trs))
	}
}
