package model

import (
	"encoding/binary"
	"sync/atomic"
)

// State is one global state of the system: program counters and local
// stores of every process, global variables, channel contents, and the
// identity of the process holding atomic control (-1 for none).
//
// States are treated as immutable once created; successor generation
// always works on copies.
type State struct {
	PCs     []int32
	Locals  [][]int64
	Globals []int64
	Chans   [][]int64 // flattened messages, width = len(channel fields)
	Atomic  int32

	// key memoizes the canonical encoding behind an atomic pointer so
	// states may be shared by concurrent explorer workers: the encoding
	// is a pure function of the immutable fields above, so racing
	// computations produce identical strings and whichever Store wins is
	// correct. (This used to be a plain string whose memoization assumed
	// single-threaded exploration; the parallel engine removed that
	// assumption.)
	key atomic.Pointer[string]
}

// clone deep-copies the state (without the memoized key: the copy is
// about to be mutated). A non-nil arena recycles the storage of
// previously discarded states.
func (st *State) clone(a *Arena) *State {
	n := a.take()
	n.PCs = append(n.PCs[:0], st.PCs...)
	n.Globals = append(n.Globals[:0], st.Globals...)
	n.Atomic = st.Atomic
	if cap(n.Locals) < len(st.Locals) {
		n.Locals = make([][]int64, len(st.Locals))
	} else {
		n.Locals = n.Locals[:len(st.Locals)]
	}
	for i, l := range st.Locals {
		n.Locals[i] = append(n.Locals[i][:0], l...)
	}
	if cap(n.Chans) < len(st.Chans) {
		n.Chans = make([][]int64, len(st.Chans))
	} else {
		n.Chans = n.Chans[:len(st.Chans)]
	}
	for i, c := range st.Chans {
		n.Chans[i] = append(n.Chans[i][:0], c...)
	}
	return n
}

// Arena recycles successor-generation scratch for one explorer worker:
// states discarded as duplicates hand their slice storage back, so the
// next clone allocates nothing. An Arena must not be shared between
// goroutines; a nil *Arena disables recycling (every clone allocates
// fresh storage).
type Arena struct {
	free []*State
}

// Recycle returns a discarded state's storage to the arena. The caller
// must hold the only reference: recycle states it just rejected (for
// example a successor whose key was already in the visited set), never
// states stored in a frontier, visited structure, or trace.
func (a *Arena) Recycle(st *State) {
	if a == nil || st == nil {
		return
	}
	a.free = append(a.free, st)
}

// take pops a recycled state (resetting its memoized key) or allocates
// a fresh one.
func (a *Arena) take() *State {
	if a == nil || len(a.free) == 0 {
		return &State{}
	}
	st := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	st.key.Store(nil)
	return st
}

// Key serializes the state into a compact byte string usable as a map key.
// The encoding is injective: slice boundaries are length-prefixed. The
// result is memoized; Key is safe to call from concurrent workers.
func (st *State) Key() string {
	if p := st.key.Load(); p != nil {
		return *p
	}
	k := string(st.AppendKey(nil))
	st.key.Store(&k)
	return k
}

// AppendKey appends the state's canonical encoding (the same bytes Key
// returns) to buf and returns the extended slice. Hot paths reuse buf
// across states so duplicate-detection never materializes a string.
func (st *State) AppendKey(buf []byte) []byte {
	if cap(buf)-len(buf) < 16+8*len(st.PCs)+8*len(st.Globals) {
		grown := make([]byte, len(buf), len(buf)+16+8*len(st.PCs)+8*len(st.Globals))
		copy(grown, buf)
		buf = grown
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(int64(st.Atomic))
	for _, pc := range st.PCs {
		put(int64(pc))
	}
	for _, g := range st.Globals {
		put(g)
	}
	for _, l := range st.Locals {
		put(int64(len(l)))
		for _, v := range l {
			put(v)
		}
	}
	for _, c := range st.Chans {
		put(int64(len(c)))
		for _, v := range c {
			put(v)
		}
	}
	return buf
}

// FNV-1a parameters for Fingerprint.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns the 64-bit FNV-1a hash of the canonical encoding
// without materializing it — equal states always fingerprint equally,
// distinct states collide with probability ~2^-64. The parallel checker
// uses it to route states to visited-set shards before (and usually
// instead of) building the full key.
func (st *State) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	var tmp [binary.MaxVarintLen64]byte
	mix := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		for i := 0; i < n; i++ {
			h = (h ^ uint64(tmp[i])) * fnvPrime64
		}
	}
	mix(int64(st.Atomic))
	for _, pc := range st.PCs {
		mix(int64(pc))
	}
	for _, g := range st.Globals {
		mix(g)
	}
	for _, l := range st.Locals {
		mix(int64(len(l)))
		for _, v := range l {
			mix(v)
		}
	}
	for _, c := range st.Chans {
		mix(int64(len(c)))
		for _, v := range c {
			mix(v)
		}
	}
	return h
}
