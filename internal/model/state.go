package model

import "encoding/binary"

// State is one global state of the system: program counters and local
// stores of every process, global variables, channel contents, and the
// identity of the process holding atomic control (-1 for none).
//
// States are treated as immutable once created; successor generation
// always works on copies.
type State struct {
	PCs     []int32
	Locals  [][]int64
	Globals []int64
	Chans   [][]int64 // flattened messages, width = len(channel fields)
	Atomic  int32

	// key memoizes the canonical encoding; states are immutable after
	// creation and the exploration is single-threaded, so computing it
	// once is safe and saves the dominant cost of repeated lookups.
	key string
}

// clone deep-copies the state (without the memoized key: the copy is
// about to be mutated).
func (st *State) clone() *State {
	n := &State{
		PCs:     append([]int32(nil), st.PCs...),
		Locals:  make([][]int64, len(st.Locals)),
		Globals: append([]int64(nil), st.Globals...),
		Chans:   make([][]int64, len(st.Chans)),
		Atomic:  st.Atomic,
	}
	for i, l := range st.Locals {
		n.Locals[i] = append([]int64(nil), l...)
	}
	for i, c := range st.Chans {
		n.Chans[i] = append([]int64(nil), c...)
	}
	return n
}

// Key serializes the state into a compact byte string usable as a map key.
// The encoding is injective: slice boundaries are length-prefixed.
func (st *State) Key() string {
	if st.key == "" {
		st.key = st.computeKey()
	}
	return st.key
}

func (st *State) computeKey() string {
	buf := make([]byte, 0, 16+8*len(st.PCs)+8*len(st.Globals))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(int64(st.Atomic))
	for _, pc := range st.PCs {
		put(int64(pc))
	}
	for _, g := range st.Globals {
		put(g)
	}
	for _, l := range st.Locals {
		put(int64(len(l)))
		for _, v := range l {
			put(v)
		}
	}
	for _, c := range st.Chans {
		put(int64(len(c)))
		for _, v := range c {
			put(v)
		}
	}
	return string(buf)
}
