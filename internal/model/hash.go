package model

// Hash64 is FNV-1a 64 over b — the hash State.Fingerprint streams over
// the canonical encoding, exported so every package hashing encodings
// (visited sets, checkpoint identity, spill indexes) agrees on one
// implementation: Hash64(st.AppendKey(nil)) == st.Fingerprint().
func Hash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * fnvPrime64
	}
	return h
}

// Hash64Seeds returns the FNV-1a offset basis and prime, for callers
// that derive secondary hashes from the same constants (for example the
// checker's double-hash bitstate tables).
func Hash64Seeds() (offset, prime uint64) {
	return fnvOffset64, fnvPrime64
}

// Hash64Writer is an io.Writer that folds everything written into a
// running Hash64. The zero value is ready to use.
type Hash64Writer struct {
	h       uint64
	started bool
}

func (w *Hash64Writer) Write(p []byte) (int, error) {
	if !w.started {
		w.h = fnvOffset64
		w.started = true
	}
	for _, b := range p {
		w.h = (w.h ^ uint64(b)) * fnvPrime64
	}
	return len(p), nil
}

// Sum64 returns the hash of everything written so far.
func (w *Hash64Writer) Sum64() uint64 {
	if !w.started {
		return fnvOffset64
	}
	return w.h
}
