package model

import (
	"encoding/binary"
	"fmt"
)

// The collapse-compressed visited set stores a state as a tuple of
// indices into side tables of component sub-vectors, Spin's -DCOLLAPSE
// idea: most states differ from an already-stored neighbor in one
// component, so each sub-vector is interned once and the tuple costs a
// few bytes. The component split of the canonical encoding is defined
// here so the encoder (AppendComponentKeys) and the re-splitter for
// already-encoded states (ComponentEnds) cannot drift apart.
//
// The encoding is cut at its natural unit boundaries — Atomic, each PC,
// the global vector, each process's locals, each channel's contents —
// and consecutive units are grouped into sections. Grouping is what
// makes the tuple small: a per-channel section for an empty channel is
// one byte, so an index referencing it costs as much as the data, and
// at the other extreme one section holding every PC is nearly unique
// per state, so its side table grows as fast as the exact store. The
// group sizes below balance the two failure modes:
//
//	control units (Atomic, PC0..PCn, Globals)  grouped by 4
//	per-process Locals                         grouped by 2
//	per-channel contents                       grouped by 8
//
// Section boundaries depend only on the system's shape (process and
// channel counts), never on a state's contents, so every state of one
// system splits at the same unit positions. Concatenating the sections
// in order yields exactly the AppendKey encoding, so Hash64 over the
// whole buffer still equals Fingerprint.
const (
	ctrlGroup  = 4
	localGroup = 2
	chanGroup  = 8
)

// NumComponents returns the number of sections AppendComponentKeys
// emits for states of this state's system.
func (st *State) NumComponents() int {
	ceil := func(n, g int) int { return (n + g - 1) / g }
	return ceil(2+len(st.PCs), ctrlGroup) + ceil(len(st.Locals), localGroup) + ceil(len(st.Chans), chanGroup)
}

// AppendComponentKeys appends the state's canonical encoding to buf —
// the same bytes AppendKey produces — and appends the end offset (into
// the returned buffer) of every component section to ends. Hot paths
// reuse both slices across states.
func (st *State) AppendComponentKeys(buf []byte, ends []int) ([]byte, []int) {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	run := 0
	mark := func(group int) {
		if run++; run == group {
			ends = append(ends, len(buf))
			run = 0
		}
	}
	flush := func() {
		if run > 0 {
			ends = append(ends, len(buf))
			run = 0
		}
	}
	put(int64(st.Atomic))
	mark(ctrlGroup)
	for _, pc := range st.PCs {
		put(int64(pc))
		mark(ctrlGroup)
	}
	for _, g := range st.Globals {
		put(g)
	}
	mark(ctrlGroup) // the global vector is one unit
	flush()
	for _, l := range st.Locals {
		put(int64(len(l)))
		for _, v := range l {
			put(v)
		}
		mark(localGroup)
	}
	flush()
	for _, c := range st.Chans {
		put(int64(len(c)))
		for _, v := range c {
			put(v)
		}
		mark(chanGroup)
	}
	flush()
	return buf, ends
}

// ComponentEnds recomputes the section end offsets of an
// already-encoded state — the ends AppendComponentKeys would have
// emitted alongside enc. As with DecodeKey, the outer arities come from
// shape (any state of the same system). Callers that built enc
// themselves get the ends for free from AppendComponentKeys; this is
// the path for encodings read back from checkpoints.
func ComponentEnds(shape *State, enc []byte, ends []int) ([]int, error) {
	d := keyDecoder{buf: enc}
	skip := func(n int) {
		for i := 0; i < n; i++ {
			d.varint()
		}
	}
	run := 0
	mark := func(group int) {
		if run++; run == group {
			ends = append(ends, len(enc)-len(d.buf))
			run = 0
		}
	}
	flush := func() {
		if run > 0 {
			ends = append(ends, len(enc)-len(d.buf))
			run = 0
		}
	}
	skip(1)
	mark(ctrlGroup)
	for range shape.PCs {
		skip(1)
		mark(ctrlGroup)
	}
	skip(len(shape.Globals))
	mark(ctrlGroup)
	flush()
	for range shape.Locals {
		skip(int(d.varint()))
		mark(localGroup)
	}
	flush()
	for range shape.Chans {
		skip(int(d.varint()))
		mark(chanGroup)
	}
	flush()
	if d.err != nil {
		return nil, fmt.Errorf("model: component ends: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("model: component ends: %d trailing bytes", len(d.buf))
	}
	return ends, nil
}
