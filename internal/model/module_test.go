package model

import "testing"

func TestFingerprintModuleDeterministic(t *testing.T) {
	dep := FingerprintModule("component", nil, "proctype C() { skip }")
	a := FingerprintModule("program", []ModuleFingerprint{dep}, "full source")
	b := FingerprintModule("program", []ModuleFingerprint{dep}, "full source")
	if a != b {
		t.Fatal("equal inputs must produce equal fingerprints")
	}
	if a.IsZero() {
		t.Fatal("a real fingerprint cannot be zero")
	}
}

// TestFingerprintModuleSensitivity: every input dimension — kind, dep
// set, dep order, canonical source — must change the address.
func TestFingerprintModuleSensitivity(t *testing.T) {
	d1 := FingerprintModule("component", nil, "one")
	d2 := FingerprintModule("component", nil, "two")
	base := FingerprintModule("program", []ModuleFingerprint{d1, d2}, "src")
	variants := map[string]ModuleFingerprint{
		"kind":       FingerprintModule("connector", []ModuleFingerprint{d1, d2}, "src"),
		"dep order":  FingerprintModule("program", []ModuleFingerprint{d2, d1}, "src"),
		"dep set":    FingerprintModule("program", []ModuleFingerprint{d1}, "src"),
		"canonical":  FingerprintModule("program", []ModuleFingerprint{d1, d2}, "src2"),
		"empty deps": FingerprintModule("program", nil, "src"),
	}
	for dim, v := range variants {
		if v == base {
			t.Errorf("changing %s must change the fingerprint", dim)
		}
	}
}

func TestModuleFingerprintParseRoundTrip(t *testing.T) {
	f := FingerprintModule("library", nil, "lib")
	got, err := ParseModuleFingerprint(f.String())
	if err != nil || got != f {
		t.Fatalf("round-trip = (%v, %v), want %v", got, err, f)
	}
	for _, bad := range []string{"", "abc", f.String()[:63], f.String() + "0", "g" + f.String()[1:]} {
		if _, err := ParseModuleFingerprint(bad); err == nil {
			t.Errorf("ParseModuleFingerprint(%q) must fail", bad)
		}
	}
}
