package model

import (
	"sync"
	"testing"
)

// parTestSrc exercises every encoded field: globals, locals, program
// counters, buffered channel contents, and nondeterministic choice.
const parTestSrc = `
byte x;
chan c = [2] of { byte, byte };
active proctype P() {
	byte i;
	do
	:: i < 3 -> c!i,i; i = i + 1
	:: else -> break
	od
}
active proctype Q() {
	byte a, b;
	do
	:: c?a,b -> x = x + a
	:: x >= 3 -> break
	od
}`

func fnvOf(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * 1099511628211
	}
	return h
}

// exploreCounts BFS-explores the system, returning how many times each
// state key was generated as a successor. With useArena it drives the
// pooled SuccessorsAppend path and recycles every duplicate.
func exploreCounts(t *testing.T, s *System, useArena bool) map[string]int {
	t.Helper()
	var a *Arena
	if useArena {
		a = &Arena{}
	}
	init := s.InitialState()
	seen := map[string]bool{init.Key(): true}
	counts := map[string]int{}
	queue := []*State{init}
	var trs []Transition
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if useArena {
			trs = s.SuccessorsAppend(st, a, trs[:0])
		} else {
			trs = s.Successors(st)
		}
		for _, tr := range trs {
			if tr.Violation != "" {
				continue
			}
			k := tr.Next.Key()
			counts[k]++
			if !seen[k] {
				seen[k] = true
				queue = append(queue, tr.Next)
			} else if useArena {
				a.Recycle(tr.Next)
			}
		}
	}
	return counts
}

func TestAppendKeyAndFingerprintMatchKey(t *testing.T) {
	s := mustSystem(t, parTestSrc)
	st := s.InitialState()
	checked := 0
	queue := []*State{st}
	seen := map[string]bool{st.Key(): true}
	for len(queue) > 0 && checked < 200 {
		st, queue = queue[0], queue[1:]
		key := st.Key()
		if got := string(st.AppendKey(nil)); got != key {
			t.Fatalf("AppendKey != Key: %q vs %q", got, key)
		}
		// AppendKey must append, not overwrite.
		buf := st.AppendKey([]byte("prefix-"))
		if string(buf) != "prefix-"+key {
			t.Fatalf("AppendKey did not append to prefix")
		}
		if fp := st.Fingerprint(); fp != fnvOf([]byte(key)) {
			t.Fatalf("Fingerprint %x != fnv(Key) %x", fp, fnvOf([]byte(key)))
		}
		checked++
		for _, tr := range s.Successors(st) {
			if tr.Violation != "" {
				continue
			}
			if k := tr.Next.Key(); !seen[k] {
				seen[k] = true
				queue = append(queue, tr.Next)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("explored only %d states; model too small for the test", checked)
	}
}

func TestSuccessorsAppendWithArenaMatchesSuccessors(t *testing.T) {
	s := mustSystem(t, parTestSrc)
	base := exploreCounts(t, s, false)
	pooled := exploreCounts(t, mustSystem(t, parTestSrc), true)
	if len(base) != len(pooled) {
		t.Fatalf("state counts differ: %d vs %d", len(base), len(pooled))
	}
	for k, n := range base {
		if pooled[k] != n {
			t.Fatalf("generation count differs for one state: %d vs %d", n, pooled[k])
		}
	}
}

// TestConcurrentStateAccess races Key/AppendKey/Fingerprint memoization
// and per-worker arena successor generation over shared states; run
// under -race it pins the State.Key concurrency contract.
func TestConcurrentStateAccess(t *testing.T) {
	s := mustSystem(t, parTestSrc)
	// A shared frontier: the initial state plus two generations of
	// successors, none memoized yet.
	var shared []*State
	init := s.InitialState()
	shared = append(shared, init)
	for _, tr := range s.Successors(init) {
		if tr.Violation != "" {
			continue
		}
		shared = append(shared, tr.Next)
		for _, tr2 := range s.Successors(tr.Next) {
			if tr2.Violation == "" {
				shared = append(shared, tr2.Next)
			}
		}
	}
	want := make([]string, len(shared))
	for i, st := range shared {
		want[i] = string(st.AppendKey(nil)) // compute without memoizing
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := &Arena{}
			var buf []byte
			var out []Transition
			for iter := 0; iter < 25; iter++ {
				for i, st := range shared {
					if st.Key() != want[i] {
						t.Errorf("racy Key mismatch")
						return
					}
					buf = st.AppendKey(buf[:0])
					if string(buf) != want[i] {
						t.Errorf("racy AppendKey mismatch")
						return
					}
					if st.Fingerprint() != fnvOf(buf) {
						t.Errorf("racy Fingerprint mismatch")
						return
					}
					out = s.SuccessorsAppend(st, a, out[:0])
					for _, tr := range out {
						if tr.Violation == "" {
							a.Recycle(tr.Next) // worker-owned clones
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestArenaClearsMemoizedKey(t *testing.T) {
	s := mustSystem(t, parTestSrc)
	a := &Arena{}
	init := s.InitialState()
	trs := s.SuccessorsAppend(init, a, nil)
	if len(trs) == 0 {
		t.Fatal("no successors")
	}
	st := trs[0].Next
	old := st.Key() // memoize
	a.Recycle(st)
	// The recycled storage must come back with no stale key.
	trs2 := s.SuccessorsAppend(trs[len(trs)-1].Next, a, nil)
	for _, tr := range trs2 {
		if tr.Next == st && tr.Next.Key() == old && string(tr.Next.AppendKey(nil)) != old {
			t.Fatal("recycled state kept its previous memoized key")
		}
	}
}
