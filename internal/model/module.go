package model

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// A ModuleFingerprint content-addresses one compilation module: a unit
// of the model compiler's output (a component program, the block
// library, the linked program, a connector block composition) together
// with the fingerprints of everything it was compiled against. Equal
// fingerprints mean the compiler would produce the same artifact, so
// the artifact can be reused instead of recompiled — across jobs, sweep
// cells, restarts, and (via the wire peek) cluster nodes.
type ModuleFingerprint [sha256.Size]byte

// String renders the fingerprint as hex, the form used on the wire and
// in artifact file names.
func (f ModuleFingerprint) String() string { return hex.EncodeToString(f[:]) }

// IsZero reports whether the fingerprint is the zero value (no module).
func (f ModuleFingerprint) IsZero() bool { return f == ModuleFingerprint{} }

// ParseModuleFingerprint decodes the 64-hex-digit wire form.
func ParseModuleFingerprint(s string) (ModuleFingerprint, error) {
	var f ModuleFingerprint
	if len(s) != 2*sha256.Size {
		return f, fmt.Errorf("model: fingerprint must be %d hex digits, got %d", 2*sha256.Size, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("model: bad fingerprint: %w", err)
	}
	copy(f[:], b)
	return f, nil
}

// FingerprintModule digests a module into its content address: the
// module kind, the fingerprints of its dependencies in declaration
// order, and its own canonical source text. Dependencies enter by
// fingerprint, not by content, so the address of a linked program
// chains through its inputs — editing one component changes that
// component's fingerprint and, transitively, the program's, while every
// sibling module keeps its address. The module's display name is
// deliberately excluded: two connectors with the same block composition
// against the same program are the same module, whatever the ADL calls
// them.
func FingerprintModule(kind string, deps []ModuleFingerprint, canonical string) ModuleFingerprint {
	h := sha256.New()
	io.WriteString(h, "pnp-module/v1\x00")
	io.WriteString(h, kind)
	h.Write([]byte{0})
	for _, d := range deps {
		h.Write(d[:])
	}
	h.Write([]byte{0})
	io.WriteString(h, canonical)
	var out ModuleFingerprint
	h.Sum(out[:0])
	return out
}
