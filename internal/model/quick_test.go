package model

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pnp/internal/pml"
)

// TestQuickSortedInsertMatchesStableSort: inserting messages one at a
// time with sortedInsert yields the same buffer as a stable sort of the
// whole batch — Spin's sorted-send semantics.
func TestQuickSortedInsertMatchesStableSort(t *testing.T) {
	f := func(raw []uint8) bool {
		const w = 2
		// Build messages (key, seq) so stability is observable.
		var msgs [][]int64
		for i, v := range raw {
			msgs = append(msgs, []int64{int64(v % 5), int64(i)})
		}
		var buf []int64
		for _, m := range msgs {
			buf = sortedInsert(buf, m, w)
		}
		ref := make([][]int64, len(msgs))
		copy(ref, msgs)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i][0] < ref[j][0] })
		for i, m := range ref {
			if buf[i*w] != m[0] || buf[i*w+1] != m[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickChannelOpsMatchReference drives a random sequence of sends and
// receives through a compiled pml program and checks the channel contents
// against a plain Go queue after every step.
func TestQuickChannelOpsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	for iter := 0; iter < 60; iter++ {
		nOps := 1 + r.Intn(12)
		type op struct {
			send bool
			val  int
		}
		var ops []op
		depth := 0
		for i := 0; i < nOps; i++ {
			if depth == 0 || (depth < 6 && r.Intn(2) == 0) {
				ops = append(ops, op{send: true, val: r.Intn(200)})
				depth++
			} else {
				ops = append(ops, op{send: false})
				depth--
			}
		}
		// Generate the straight-line pml program.
		src := "chan c = [6] of { byte };\nactive proctype P() {\n\tbyte x;\n"
		for _, o := range ops {
			if o.send {
				src += fmt.Sprintf("\tc!%d;\n", o.val)
			} else {
				src += "\tc?x;\n"
			}
		}
		src += "}\n"
		prog, err := pml.CompileSource(src)
		if err != nil {
			t.Fatalf("iter %d: compile: %v\n%s", iter, err, src)
		}
		sys := New(prog)
		if err := sys.SpawnActive(); err != nil {
			t.Fatal(err)
		}
		id, _ := sys.ChannelByName("c")
		st := sys.InitialState()
		var ref []int64
		for step, o := range ops {
			trs := sys.Successors(st)
			if len(trs) != 1 {
				t.Fatalf("iter %d step %d: %d transitions", iter, step, len(trs))
			}
			st = trs[0].Next
			if o.send {
				ref = append(ref, int64(o.val))
			} else {
				ref = ref[1:]
			}
			got := st.Chans[id]
			if len(got) != len(ref) {
				t.Fatalf("iter %d step %d: contents %v, want %v", iter, step, got, ref)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("iter %d step %d: contents %v, want %v", iter, step, got, ref)
				}
			}
		}
	}
}

// TestQuickStateKeyInjective: distinct states (different PCs, globals, or
// channel contents) must have distinct keys; clones must agree.
func TestQuickStateKeyInjective(t *testing.T) {
	mk := func(pcs []int32, globals []int64, ch []int64, atomic int32) *State {
		return &State{
			PCs:     pcs,
			Locals:  [][]int64{{}},
			Globals: globals,
			Chans:   [][]int64{ch},
			Atomic:  atomic,
		}
	}
	f := func(pc1, pc2 int32, g1, g2 int64, c1, c2 []int64, a1, a2 int32) bool {
		s1 := mk([]int32{pc1}, []int64{g1}, c1, a1)
		s2 := mk([]int32{pc2}, []int64{g2}, c2, a2)
		same := pc1 == pc2 && g1 == g2 && a1 == a2 && len(c1) == len(c2)
		if same {
			for i := range c1 {
				if c1[i] != c2[i] {
					same = false
					break
				}
			}
		}
		return (s1.Key() == s2.Key()) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyDistinguishesBoundaries: moving a value across a slice
// boundary (e.g. from one channel to the next) must change the key — the
// encoding is length-prefixed.
func TestQuickKeyDistinguishesBoundaries(t *testing.T) {
	s1 := &State{
		PCs:     []int32{0},
		Locals:  [][]int64{{}},
		Globals: nil,
		Chans:   [][]int64{{1, 2}, {}},
		Atomic:  -1,
	}
	s2 := &State{
		PCs:     []int32{0},
		Locals:  [][]int64{{}},
		Globals: nil,
		Chans:   [][]int64{{1}, {2}},
		Atomic:  -1,
	}
	if s1.Key() == s2.Key() {
		t.Error("keys collide across channel boundaries")
	}
}

// TestQuickSuccessorsDoNotMutateSource: successor generation must never
// modify the source state (states are immutable).
func TestQuickSuccessorsDoNotMutateSource(t *testing.T) {
	prog, err := pml.CompileSource(`
chan c = [2] of { byte };
byte g;
active proctype A() {
	do
	:: c!1
	:: g = g + 1
	od
}
active proctype B() {
	byte x;
	do
	:: c?x
	:: x = 0
	od
}`)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(prog)
	if err := sys.SpawnActive(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	st := sys.InitialState()
	for step := 0; step < 200; step++ {
		before := st.Key()
		trs := sys.Successors(st)
		if st.Key() != before {
			t.Fatalf("step %d: Successors mutated the source state", step)
		}
		if len(trs) == 0 {
			break
		}
		st = trs[r.Intn(len(trs))].Next
	}
}
