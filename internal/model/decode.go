package model

import (
	"encoding/binary"
	"fmt"
)

// DecodeKey reconstructs a State from its canonical encoding — the exact
// bytes AppendKey produces. The encoding is injective but not fully
// self-describing: the outer arities (process count, globals count,
// locals and channel slice counts) are fixed per system, so they are
// taken from shape — any state of the same system, typically
// System.InitialState(). Inner slice lengths are length-prefixed in the
// encoding itself.
//
// DecodeKey is the read side of search checkpointing: frontier states
// persisted as their canonical encodings are rebuilt through it on
// resume. The round trip is exact — st2 := DecodeKey(shape,
// st.AppendKey(nil)) satisfies st2.Key() == st.Key().
func DecodeKey(shape *State, enc []byte) (*State, error) {
	d := keyDecoder{buf: enc}
	st := &State{
		PCs:     make([]int32, len(shape.PCs)),
		Locals:  make([][]int64, len(shape.Locals)),
		Globals: make([]int64, len(shape.Globals)),
		Chans:   make([][]int64, len(shape.Chans)),
	}
	st.Atomic = int32(d.varint())
	for i := range st.PCs {
		st.PCs[i] = int32(d.varint())
	}
	for i := range st.Globals {
		st.Globals[i] = d.varint()
	}
	for i := range st.Locals {
		st.Locals[i] = d.slice()
	}
	for i := range st.Chans {
		st.Chans[i] = d.slice()
	}
	if d.err != nil {
		return nil, fmt.Errorf("model: decode state key: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("model: decode state key: %d trailing bytes", len(d.buf))
	}
	return st, nil
}

type keyDecoder struct {
	buf []byte
	err error
}

func (d *keyDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *keyDecoder) slice() []int64 {
	n := d.varint()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > int64(len(d.buf)) {
		d.err = fmt.Errorf("bad slice length %d", n)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.varint()
	}
	return out
}
