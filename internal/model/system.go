// Package model executes the formal semantics of compiled pml programs:
// it instantiates proctypes into processes, binds channel parameters, and
// generates successor states (including rendezvous pairing, sorted sends,
// random receives, and atomic sections) for state-space exploration.
package model

import (
	"fmt"
	"io"

	"pnp/internal/pml"
)

// ChanID identifies a channel within a System. Global channels occupy
// IDs 0..len(GlobalChans)-1 in declaration order; channels created by
// AddChannel or by local channel declarations follow.
type ChanID int

// chanShape is the runtime shape of one channel.
type chanShape struct {
	name   string
	cap    int
	fields []pml.Type
}

// Instance is one running process: a proctype plus its bindings.
type Instance struct {
	Proc       *pml.Proc
	Pid        int
	Name       string // display name, e.g. "Car[2]"
	ChanBind   []int  // chan slot -> ChanID
	initLocals []int64
}

// Arg is an argument passed to Spawn: an integer or a channel.
type Arg struct {
	isChan bool
	i      int64
	ch     ChanID
}

// Int makes an integer Spawn argument.
func Int(v int64) Arg { return Arg{i: v} }

// Chan makes a channel Spawn argument.
func Chan(id ChanID) Arg { return Arg{isChan: true, ch: id} }

// System is an instantiated model: a compiled program, a set of channels,
// and a set of process instances.
type System struct {
	Prog   *pml.Compiled
	shapes []chanShape
	insts  []*Instance
	byName map[string]ChanID
}

// New creates a System over a compiled program, materializing its global
// channels.
func New(prog *pml.Compiled) *System {
	s := &System{Prog: prog, byName: make(map[string]ChanID)}
	for _, ci := range prog.GlobalChans {
		id := ChanID(len(s.shapes))
		s.shapes = append(s.shapes, chanShape{name: ci.Name, cap: ci.Cap, fields: ci.Fields})
		s.byName[ci.Name] = id
	}
	return s
}

// AddChannel creates an additional channel (beyond the program's global
// declarations) and returns its ID. Capacity 0 makes it a rendezvous
// channel.
func (s *System) AddChannel(name string, capacity int, fields []pml.Type) ChanID {
	id := ChanID(len(s.shapes))
	s.shapes = append(s.shapes, chanShape{name: name, cap: capacity, fields: fields})
	if name != "" {
		s.byName[name] = id
	}
	return id
}

// ChannelByName finds a channel by name.
func (s *System) ChannelByName(name string) (ChanID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// ChannelName returns the display name of a channel.
func (s *System) ChannelName(id ChanID) string { return s.shapes[id].name }

// NumChannels returns the number of channels in the system.
func (s *System) NumChannels() int { return len(s.shapes) }

// NumInstances returns the number of spawned processes.
func (s *System) NumInstances() int { return len(s.insts) }

// Instances returns the spawned processes in pid order.
func (s *System) Instances() []*Instance { return s.insts }

// Spawn instantiates a proctype with the given arguments and returns the
// new process. Channel parameters are checked for arity against every
// send/receive the proctype performs on them.
func (s *System) Spawn(procName string, args ...Arg) (*Instance, error) {
	proc := s.Prog.Proc(procName)
	if proc == nil {
		return nil, fmt.Errorf("model: unknown proctype %q", procName)
	}
	if len(args) != len(proc.Params) {
		return nil, fmt.Errorf("model: proctype %s takes %d arguments, got %d",
			procName, len(proc.Params), len(args))
	}
	inst := &Instance{
		Proc:       proc,
		Pid:        len(s.insts),
		Name:       fmt.Sprintf("%s[%d]", procName, len(s.insts)),
		ChanBind:   make([]int, len(proc.ChanSlots)),
		initLocals: make([]int64, len(proc.IntVars)),
	}
	for i, v := range proc.IntVars {
		inst.initLocals[i] = v.Init
	}
	for pi, prm := range proc.Params {
		a := args[pi]
		if prm.IsChan != a.isChan {
			return nil, fmt.Errorf("model: proctype %s parameter %q: argument kind mismatch",
				procName, prm.Name)
		}
		if prm.IsChan {
			if int(a.ch) < 0 || int(a.ch) >= len(s.shapes) {
				return nil, fmt.Errorf("model: proctype %s parameter %q: invalid channel", procName, prm.Name)
			}
			inst.ChanBind[prm.Slot] = int(a.ch)
		} else {
			inst.initLocals[prm.Slot] = prm.Type.Truncate(a.i)
		}
	}
	// Materialize local channel declarations: one fresh channel per slot.
	for slot, cs := range proc.ChanSlots {
		if cs.IsParam {
			continue
		}
		id := s.AddChannel(fmt.Sprintf("%s.%s", inst.Name, cs.Name), cs.Decl.Cap, cs.Decl.Fields)
		inst.ChanBind[slot] = int(id)
	}
	if err := s.checkChanArity(inst); err != nil {
		return nil, err
	}
	s.insts = append(s.insts, inst)
	return inst, nil
}

// SpawnActive instantiates every `active` proctype the declared number of
// times. Active proctypes must be parameterless.
func (s *System) SpawnActive() error {
	for _, p := range s.Prog.Procs {
		if p.Active == 0 {
			continue
		}
		if len(p.Params) > 0 {
			return fmt.Errorf("model: active proctype %s has parameters", p.Name)
		}
		for i := 0; i < p.Active; i++ {
			if _, err := s.Spawn(p.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkChanArity validates that every channel operation the instance can
// perform matches the width of the channel actually bound.
func (s *System) checkChanArity(inst *Instance) error {
	for ni := range inst.Proc.Nodes {
		for ei := range inst.Proc.Nodes[ni].Edges {
			e := &inst.Proc.Nodes[ni].Edges[ei]
			var n int
			switch e.Kind {
			case pml.EdgeSend:
				n = len(e.SendArgs)
			case pml.EdgeRecv:
				n = len(e.RecvArgs)
			default:
				continue
			}
			id := s.resolveChanFor(inst, e.Ch)
			if w := len(s.shapes[id].fields); w != n {
				return fmt.Errorf(
					"model: %s: %s on channel %s at %s: channel carries %d fields, operation has %d",
					inst.Name, e.Label, s.shapes[id].name, e.Pos, w, n)
			}
		}
	}
	return nil
}

// resolveChanFor maps a compiled channel reference to a concrete channel
// for the given instance.
func (s *System) resolveChanFor(inst *Instance, ref pml.ChanRef) int {
	if ref.Global {
		return ref.Idx
	}
	return inst.ChanBind[ref.Idx]
}

// InitialState builds the initial state of the system.
func (s *System) InitialState() *State {
	st := &State{
		Globals: make([]int64, len(s.Prog.GlobalVars)),
		PCs:     make([]int32, len(s.insts)),
		Locals:  make([][]int64, len(s.insts)),
		Chans:   make([][]int64, len(s.shapes)),
		Atomic:  -1,
	}
	for i, v := range s.Prog.GlobalVars {
		st.Globals[i] = v.Init
	}
	for i, inst := range s.insts {
		st.PCs[i] = int32(inst.Proc.Entry)
		st.Locals[i] = append([]int64(nil), inst.initLocals...)
	}
	for i := range st.Chans {
		st.Chans[i] = []int64{}
	}
	return st
}

// EvalGlobal evaluates a global-scope expression (from
// pml.Compiled.CompileGlobalExpr) in a state. The expression must not
// reference process-local variables; the resolver enforces this.
func (s *System) EvalGlobal(st *State, e pml.RExpr) (int64, error) {
	return pml.Eval(e, env{s: s, st: st, proc: 0})
}

// AtEndState reports whether instance i is at a valid end location in st
// (its final node or an end-labeled node).
func (s *System) AtEndState(st *State, i int) bool {
	n := &s.insts[i].Proc.Nodes[st.PCs[i]]
	return n.Final || n.EndLabel
}

// WriteFingerprint writes a canonical structural description of the
// instantiated system — channel shapes, process instances, parameter
// bindings — to w. Together with the compiled program's source text it
// content-addresses the composed model: two systems with equal
// fingerprints and equal program sources explore identical state spaces.
func (s *System) WriteFingerprint(w io.Writer) {
	fmt.Fprintf(w, "chans:%d;", len(s.shapes))
	for _, sh := range s.shapes {
		fmt.Fprintf(w, "%s cap=%d fields=%v;", sh.name, sh.cap, sh.fields)
	}
	fmt.Fprintf(w, "insts:%d;", len(s.insts))
	for _, in := range s.insts {
		fmt.Fprintf(w, "%s proc=%s bind=%v locals=%v;", in.Name, in.Proc.Name, in.ChanBind, in.initLocals)
	}
}
