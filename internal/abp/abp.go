// Package abp implements the alternating bit protocol over Plug-and-Play
// connectors as a second verification case study: both the data path and
// the acknowledgement path run through *lossy* channels — the unreliable
// medium that may drop (and, given buffer room, duplicate) any message
// in transit, under which plain compositions fail the delivery goal
// (experiment E12) — and the protocol's retransmission discipline
// restores reliable, in-order, exactly-once delivery, verified by the
// checker and demonstrable at runtime.
package abp

import (
	"fmt"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
)

// Source is the pml model of the protocol components. The alternating bit
// rides in the messages' selectiveData field; payloads are 1..k so the
// receiver can assert in-order delivery.
const Source = `
byte delivered;
byte badDelivery;

/* Sender: transmit payload i+1 tagged with bit b, then poll the ack
 * path; a matching ack advances, anything else (stale ack or nothing)
 * triggers retransmission. */
proctype AbpSender(chan dsig; chan ddat; chan asig; chan adat; byte k) {
	byte i;
	bit b;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: i < k ->
	   ddat!i + 1,0,b,0,1;
	   dsig?st,_;
	   adat!0,0,0,0,1;
	   asig?st,_;
	   adat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC && sd == b ->
	      i = i + 1;
	      b = 1 - b
	   :: else
	   fi
	:: else -> break
	od
}

/* Receiver: take any data message; a fresh bit delivers (asserting the
 * payload is the next expected one) and acks; a duplicate just re-acks
 * with its own bit. */
proctype AbpReceiver(chan dsig; chan ddat; chan asig; chan adat; byte k) {
	bit expect;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: delivered < k ->
	   ddat!0,0,0,0,1;
	   dsig?st,_;
	   ddat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC ->
	      if
	      :: sd == expect ->
	         if
	         :: d == delivered + 1 -> skip
	         :: else -> badDelivery = 1
	         fi;
	         delivered = delivered + 1;
	         adat!0,0,sd,0,1;
	         asig?st,_;
	         expect = 1 - expect
	      :: else ->
	         adat!0,0,sd,0,1;
	         asig?st,_
	      fi
	   :: else
	   fi
	:: else -> break
	od
}
`

// Config sizes the protocol run.
type Config struct {
	Payloads int // messages to transfer (default 2)
	// Reliable replaces the lossy channels with sound single-slot
	// buffers (a control configuration for comparisons).
	Reliable bool
	// Overflow replaces the lossy channels with overflow-dropping
	// buffers: loss happens only when the buffer is full. This weaker
	// adversary matters for liveness: under process-level strong
	// fairness the full eventuality <>delivered holds here, whereas a
	// lossy channel may drop every retransmission — fairness constrains
	// the scheduler, not the channel's nondeterministic choice — so over
	// lossy channels delivery is stated as the fairness-independent
	// AG EF goal instead (see Verify).
	Overflow bool
}

func (c Config) withDefaults() Config {
	if c.Payloads == 0 {
		c.Payloads = 2
	}
	return c
}

// Build composes the protocol: sender and receiver joined by two lossy
// connectors (data and ack), each an asynchronous blocking send into a
// lossy(1) buffer polled through a nonblocking receive. At size 1 the
// lossy channel's duplication branch never has a spare slot, so the
// adversary is pure in-transit loss; the protocol's own alternating bit
// is what makes duplicates (from retransmission) harmless.
func Build(cfg Config, cache *blocks.Cache) (*blocks.Builder, error) {
	cfg = cfg.withDefaults()
	b, err := blocks.NewBuilder(Source, cache)
	if err != nil {
		return nil, err
	}
	spec := blocks.ConnectorSpec{
		Send:    blocks.AsynBlockingSend,
		Channel: blocks.LossyBuffer, Size: 1,
		Recv: blocks.NonblockingRecv,
	}
	if cfg.Overflow {
		spec.Channel = blocks.DroppingBuffer
	}
	if cfg.Reliable {
		spec.Channel = blocks.SingleSlot
		spec.Size = 0
	}
	data, err := b.NewConnector("Data", spec)
	if err != nil {
		return nil, err
	}
	ack, err := b.NewConnector("Ack", spec)
	if err != nil {
		return nil, err
	}
	sData, err := data.AddSender("Sender")
	if err != nil {
		return nil, err
	}
	rData, err := data.AddReceiver("Receiver")
	if err != nil {
		return nil, err
	}
	sAck, err := ack.AddSender("ReceiverAck")
	if err != nil {
		return nil, err
	}
	rAck, err := ack.AddReceiver("SenderAck")
	if err != nil {
		return nil, err
	}
	k := model.Int(int64(cfg.Payloads))
	if _, err := b.Spawn("AbpSender",
		model.Chan(sData.Sig), model.Chan(sData.Dat),
		model.Chan(rAck.Sig), model.Chan(rAck.Dat), k); err != nil {
		return nil, err
	}
	if _, err := b.Spawn("AbpReceiver",
		model.Chan(rData.Sig), model.Chan(rData.Dat),
		model.Chan(sAck.Sig), model.Chan(sAck.Dat), k); err != nil {
		return nil, err
	}
	return b, nil
}

// Results holds the three protocol verdicts.
type Results struct {
	Safety   *checker.Result // no deadlock, no out-of-order delivery
	Delivery *checker.Result // AG EF (delivered == k)
}

// Verify builds and checks the protocol: in-order exactly-once delivery
// as an invariant, and completion as a fairness-independent goal.
func Verify(cfg Config, cache *blocks.Cache, opts checker.Options) (*Results, error) {
	cfg = cfg.withDefaults()
	b, err := Build(cfg, cache)
	if err != nil {
		return nil, err
	}
	inv, err := checker.InvariantFromSource(b.Program(), "in-order", "badDelivery == 0")
	if err != nil {
		return nil, err
	}
	bound, err := checker.InvariantFromSource(b.Program(), "exactly-once",
		fmt.Sprintf("delivered <= %d", cfg.Payloads))
	if err != nil {
		return nil, err
	}
	safetyOpts := opts
	safetyOpts.Invariants = append(safetyOpts.Invariants, inv, bound)
	safety := checker.New(b.System(), safetyOpts).CheckSafety()

	target, err := b.Program().CompileGlobalExpr(fmt.Sprintf("delivered == %d", cfg.Payloads))
	if err != nil {
		return nil, err
	}
	delivery := checker.New(b.System(), opts).CheckEventuallyReachable(target)
	return &Results{Safety: safety, Delivery: delivery}, nil
}
