package abp

import (
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
)

func TestABPOverLossyChannels(t *testing.T) {
	res, err := Verify(Config{Payloads: 2}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK {
		t.Fatalf("safety failed: %s\n%s", res.Safety.Summary(), res.Safety.Trace)
	}
	if !res.Delivery.OK {
		t.Fatalf("delivery goal failed: %s\n%s", res.Delivery.Summary(), res.Delivery.Trace)
	}
}

func TestABPThreePayloads(t *testing.T) {
	res, err := Verify(Config{Payloads: 3}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK || !res.Delivery.OK {
		t.Fatalf("safety=%s delivery=%s", res.Safety.Summary(), res.Delivery.Summary())
	}
}

func TestABPReliableControl(t *testing.T) {
	res, err := Verify(Config{Payloads: 2, Reliable: true}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safety.OK || !res.Delivery.OK {
		t.Fatalf("safety=%s delivery=%s", res.Safety.Summary(), res.Delivery.Summary())
	}
}

// TestNaiveTransferOverLossyChannelFails is the contrast experiment
// (E12, generalized): the same lossy(1) connector WITHOUT the protocol
// (plain send, count on receive) cannot guarantee completion — a message
// lost in transit is gone for good.
func TestNaiveTransferOverLossyChannelFails(t *testing.T) {
	const naive = `
byte delivered;
proctype NaiveSender(chan dsig; chan ddat; byte k) {
	byte i;
	mtype st;
	do
	:: i < k ->
	   ddat!i + 1,0,0,0,1;
	   dsig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype NaiveReceiver(chan dsig; chan ddat; byte k) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: delivered < k ->
	   ddat!0,0,0,0,1;
	   dsig?st,_;
	   ddat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> delivered = delivered + 1
	   :: else
	   fi
	:: else -> break
	od
}`
	b, err := blocks.NewBuilder(naive, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.LossyBuffer, Size: 1,
		Recv: blocks.NonblockingRecv,
	}
	conn, err := b.NewConnector("Data", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.AddSender("s")
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.AddReceiver("r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("NaiveSender", model.Chan(snd.Sig), model.Chan(snd.Dat), model.Int(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("NaiveReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat), model.Int(2)); err != nil {
		t.Fatal(err)
	}
	target, err := b.Program().CompileGlobalExpr("delivered == 2")
	if err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{}).CheckEventuallyReachable(target)
	if res.OK {
		t.Fatal("naive transfer over a lossy channel should NOT guarantee delivery")
	}
}

// TestABPDeliveryEventuallyUnderStrongFairness: over overflow-dropping
// channels the full LTL eventuality holds under strong fairness
// (retransmission makes progress whenever the scheduler is fair to
// every intermittently enabled process). Over lossy channels it does
// NOT — the drop is the channel's own nondeterministic choice, which
// process fairness cannot forbid, so the lossy configuration states
// delivery as the AG EF goal instead (TestABPOverLossyChannels).
func TestABPDeliveryEventuallyUnderStrongFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("strong-fairness product is large")
	}
	b, err := Build(Config{Payloads: 1, Overflow: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	props, err := checker.PropsFromSource(b.Program(), map[string]string{"done": "delivered == 1"})
	if err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{}).CheckLTLStrongFair("<> done", props)
	if !res.OK {
		t.Fatalf("<>done should hold under strong fairness: %s\n%s", res.Summary(), res.Trace)
	}
}

// TestABPEventualityRefutedOverLossyChannels pins the semantic boundary
// of the previous test: over lossy(1) channels the same eventuality is
// correctly refuted even under strong fairness, because the checker
// finds the run where the channel chooses to drop every retransmission.
func TestABPEventualityRefutedOverLossyChannels(t *testing.T) {
	if testing.Short() {
		t.Skip("strong-fairness product is large")
	}
	b, err := Build(Config{Payloads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	props, err := checker.PropsFromSource(b.Program(), map[string]string{"done": "delivered == 1"})
	if err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{}).CheckLTLStrongFair("<> done", props)
	if res.OK {
		t.Fatal("<>done must be refuted over lossy channels: fairness cannot force the channel's drop choice")
	}
}
