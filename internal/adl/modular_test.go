package adl

import (
	"strings"
	"testing"

	"pnp/internal/artifact"
	"pnp/internal/checker"
)

// twoWireSystem has two distinct connectors so a one-connector edit
// leaves a sibling module to reuse.
const twoWireSystem = `
system twowire {
    components "ping.pml"

    connector Wire {
        send    syn-blocking
        channel single-slot
        receive blocking
    }
    connector Back {
        send    asyn-blocking
        channel fifo(2)
        receive blocking
    }

    instance p = Ping(send Wire)
    instance q = Pong(recv Wire)

    invariant bounded "hits <= 2"
}
`

func newTestStore(t *testing.T) *artifact.Store {
	t.Helper()
	s, err := artifact.NewStore(64, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLoadModularMatchesLoad pins the refactor's central invariant: the
// modular compilation route composes a byte-identical system — same
// Builder source, same verdicts — and only adds module accounting.
func TestLoadModularMatchesLoad(t *testing.T) {
	files := map[string]string{"ping.pml": pingPml}
	mono, err := Load(twoWireSystem, resolver(files), nil)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModular(twoWireSystem, resolver(files), newTestStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if mono.Builder.Source() != mod.Builder.Source() {
		t.Fatal("modular composition must produce the identical program source")
	}
	if len(mono.Connectors) != len(mod.Connectors) || len(mono.Sources) != len(mod.Sources) {
		t.Fatalf("composition diverged: %d/%d connectors, %d/%d properties",
			len(mono.Connectors), len(mod.Connectors), len(mono.Sources), len(mod.Sources))
	}
	monoRes := mono.VerifyAll(checker.Options{})
	modRes := mod.VerifyAll(checker.Options{})
	for name, mr := range monoRes {
		dr := modRes[name]
		if dr == nil || dr.OK != mr.OK || dr.Stats.StatesStored != mr.Stats.StatesStored {
			t.Errorf("property %s: monolithic %v/%d states, modular %v",
				name, mr.OK, mr.Stats.StatesStored, dr)
		}
	}
	// Module DAG shape: library + 1 component + program + 2 connectors.
	if len(mod.Modules) != 5 {
		t.Fatalf("modules = %d, want 5:\n%+v", len(mod.Modules), mod.Modules)
	}
	if mod.ModulesCompiled != 5 || mod.ModulesReused != 0 {
		t.Fatalf("cold load: compiled=%d reused=%d, want all 5 compiled",
			mod.ModulesCompiled, mod.ModulesReused)
	}
	kinds := []string{artifact.KindLibrary, artifact.KindComponent, artifact.KindProgram,
		artifact.KindConnector, artifact.KindConnector}
	for i, m := range mod.Modules {
		if m.Kind != kinds[i] {
			t.Errorf("module %d kind = %s, want %s", i, m.Kind, kinds[i])
		}
	}
}

// TestLoadModularOneConnectorEdit is the PR's headline path: editing one
// connector recompiles exactly that module, reusing library, component,
// program, and the untouched sibling connector.
func TestLoadModularOneConnectorEdit(t *testing.T) {
	files := map[string]string{"ping.pml": pingPml}
	store := newTestStore(t)
	base, err := LoadModular(twoWireSystem, resolver(files), store)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(twoWireSystem, "channel fifo(2)", "channel fifo(3)", 1)
	if edited == twoWireSystem {
		t.Fatal("edit did not apply")
	}
	sys, err := LoadModular(edited, resolver(files), store)
	if err != nil {
		t.Fatal(err)
	}
	total := len(sys.Modules)
	if total != 5 || sys.ModulesReused != total-1 || sys.ModulesCompiled != 1 {
		t.Fatalf("one-connector edit: total=%d reused=%d compiled=%d, want %d reused and 1 compiled",
			total, sys.ModulesReused, sys.ModulesCompiled, total-1)
	}
	// The one fresh module is the edited connector; everything else kept
	// its content address.
	for i, m := range sys.Modules {
		wantReused := m.Name != "Back"
		if m.Reused != wantReused {
			t.Errorf("module %d (%s %s): reused=%v, want %v", i, m.Kind, m.Name, m.Reused, wantReused)
		}
		if m.Name != "Back" && m.Hash != base.Modules[i].Hash {
			t.Errorf("module %d (%s) changed address without changing content", i, m.Name)
		}
	}
	// An unchanged resubmission reuses everything.
	again, err := LoadModular(edited, resolver(files), store)
	if err != nil {
		t.Fatal(err)
	}
	if again.ModulesReused != total || again.ModulesCompiled != 0 {
		t.Fatalf("identical resubmission: reused=%d compiled=%d, want full reuse",
			again.ModulesReused, again.ModulesCompiled)
	}
}

// TestLoadModularComponentEditRecompilesProgram: editing a component
// changes its module and, transitively, the program module — but the
// connectors depend on the program by fingerprint, so they change too.
// Only the library survives a component edit.
func TestLoadModularComponentEdit(t *testing.T) {
	store := newTestStore(t)
	if _, err := LoadModular(twoWireSystem, resolver(map[string]string{"ping.pml": pingPml}), store); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(pingPml, "hits <= 2", "hits <= 2", 1) + "\n"
	sys, err := LoadModular(twoWireSystem, resolver(map[string]string{"ping.pml": edited}), store)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ModulesReused != 1 || sys.Modules[0].Kind != artifact.KindLibrary || !sys.Modules[0].Reused {
		t.Fatalf("component edit must reuse exactly the library: %+v", sys.Modules)
	}
}

func TestLoadModularRequiresStore(t *testing.T) {
	if _, err := LoadModular(twoWireSystem, resolver(map[string]string{"ping.pml": pingPml}), nil); err == nil {
		t.Fatal("LoadModular without a store must fail")
	}
}
