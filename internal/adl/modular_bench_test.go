package adl

import (
	"os"
	"strings"
	"testing"

	"pnp/internal/artifact"
)

// BenchmarkIncrementalRecompile measures what PR10 buys on the E9
// bridge: a cold modular compile builds all seven modules, while the
// same design with one connector edited re-derives exactly one against
// a warm store. The reported modules_compiled metric is the row that
// matters — wall time follows it.
func BenchmarkIncrementalRecompile(b *testing.B) {
	srcB, err := os.ReadFile("../../examples/adl/bridge.pnp")
	if err != nil {
		b.Fatal(err)
	}
	pmlB, err := os.ReadFile("../../examples/adl/bridge.pml")
	if err != nil {
		b.Fatal(err)
	}
	src := string(srcB)
	edited := strings.Replace(src, "channel single-slot", "channel fifo(1)", 1)
	if edited == src {
		b.Fatal("connector edit did not apply")
	}
	res := resolver(map[string]string{"bridge.pml": string(pmlB)})

	newStore := func() *artifact.Store {
		s, err := artifact.NewStore(64, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}

	b.Run("cold", func(b *testing.B) {
		var last *System
		for i := 0; i < b.N; i++ {
			sys, err := LoadModular(src, res, newStore())
			if err != nil {
				b.Fatal(err)
			}
			last = sys
		}
		b.ReportMetric(float64(last.ModulesCompiled), "modules_compiled")
		b.ReportMetric(float64(last.ModulesReused), "modules_reused")
	})

	b.Run("one-connector-edit", func(b *testing.B) {
		var last *System
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := newStore()
			if _, err := LoadModular(src, res, store); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			sys, err := LoadModular(edited, res, store)
			if err != nil {
				b.Fatal(err)
			}
			last = sys
		}
		b.ReportMetric(float64(last.ModulesCompiled), "modules_compiled")
		b.ReportMetric(float64(last.ModulesReused), "modules_reused")
	})

	b.Run("full-reuse", func(b *testing.B) {
		store := newStore()
		if _, err := LoadModular(src, res, store); err != nil {
			b.Fatal(err)
		}
		var last *System
		for i := 0; i < b.N; i++ {
			sys, err := LoadModular(src, res, store)
			if err != nil {
				b.Fatal(err)
			}
			last = sys
		}
		b.ReportMetric(float64(last.ModulesCompiled), "modules_compiled")
		b.ReportMetric(float64(last.ModulesReused), "modules_reused")
	})
}
