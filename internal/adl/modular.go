package adl

import (
	"fmt"
	"strings"

	"pnp/internal/artifact"
	"pnp/internal/blocks"
	"pnp/internal/model"
	"pnp/internal/pml"
)

// LoadModular parses src and composes the described system through a
// content-addressed artifact store, emitting one module per compilation
// unit instead of treating the design as a monolith:
//
//	library ──┐
//	comp A  ──┼──▶ program ──▶ connector₁ … connectorₙ
//	comp B  ──┘
//
// The block library, each resolved component file, the linked program,
// and each connector block composition get their own
// model.ModuleFingerprint; the program depends on the library and the
// components, each connector on the program. A resubmission that edits
// one connector therefore re-derives exactly one module — the program
// artifact (the expensive pml compile) and every other connector keep
// their addresses and are served from the store — and the returned
// System reports which modules were reused and which had to be built.
//
// The composed system is byte-identical to Load's: same Builder source,
// same ModelHash, same verdicts. Only the compilation route and the
// accounting differ.
func LoadModular(src string, resolve Resolver, store *artifact.Store) (*System, error) {
	if store == nil {
		return nil, fmt.Errorf("adl: LoadModular requires an artifact store")
	}
	pf, err := parse(src)
	if err != nil {
		return nil, err
	}
	texts, err := resolveComponents(pf, resolve)
	if err != nil {
		return nil, err
	}

	var modules []artifact.Info
	record := func(ref artifact.Ref, reused bool) {
		in := ref.Info()
		in.Reused = reused
		modules = append(modules, in)
	}
	// intern stores a source-only module (library, component, connector)
	// unless an equal one is already present — within this load or from
	// any earlier job, sweep cell, or restart.
	intern := func(ref artifact.Ref, source string, payload any) bool {
		if _, ok := store.Get(ref.Hash); ok {
			record(ref, true)
			return true
		}
		store.Put(&artifact.Artifact{Ref: ref, Source: source, Payload: payload})
		record(ref, false)
		return false
	}

	libRef := artifact.Ref{
		Hash: model.FingerprintModule(artifact.KindLibrary, nil, blocks.LibrarySource),
		Kind: artifact.KindLibrary,
		Name: "library",
	}
	intern(libRef, blocks.LibrarySource, nil)

	progDeps := []model.ModuleFingerprint{libRef.Hash}
	for i, text := range texts {
		ref := artifact.Ref{
			Hash: model.FingerprintModule(artifact.KindComponent, nil, text),
			Kind: artifact.KindComponent,
			Name: pf.components[i],
		}
		intern(ref, text, nil)
		progDeps = append(progDeps, ref.Hash)
	}

	// The linked program's canonical source concatenates the library and
	// the components exactly the way Load does, so both paths produce
	// the same Builder source and the same ModelHash.
	var full strings.Builder
	full.WriteString(blocks.LibrarySource)
	full.WriteByte('\n')
	for _, text := range texts {
		full.WriteString(text)
		full.WriteByte('\n')
	}
	progRef := artifact.Ref{
		Hash: model.FingerprintModule(artifact.KindProgram, progDeps, full.String()),
		Kind: artifact.KindProgram,
		Name: pf.name,
		Deps: progDeps,
	}
	prog, progReused, err := programFor(store, progRef, full.String())
	if err != nil {
		return nil, err
	}
	record(progRef, progReused)

	b := blocks.NewBuilderFromProgram(prog, full.String())
	sys, err := compose(pf, b)
	if err != nil {
		return nil, err
	}

	for _, pc := range pf.connectors {
		ref := artifact.Ref{
			Hash: model.FingerprintModule(artifact.KindConnector, []model.ModuleFingerprint{progRef.Hash}, pc.spec.Token()),
			Kind: artifact.KindConnector,
			Name: pc.name,
			Deps: []model.ModuleFingerprint{progRef.Hash},
		}
		intern(ref, pc.spec.Token(), pc.spec)
	}

	sys.Modules = modules
	for _, m := range modules {
		if m.Reused {
			sys.ModulesReused++
		} else {
			sys.ModulesCompiled++
		}
	}
	return sys, nil
}

// programFor resolves the program module to a live *pml.Compiled: a
// store hit with a payload is the full reuse path; a hit without one (a
// disk envelope surviving a restart or an LRU eviction) reuses the
// module's identity and recompiles its canonical source once,
// reattaching the payload for the next caller; a miss compiles and
// stores.
func programFor(store *artifact.Store, ref artifact.Ref, source string) (*pml.Compiled, bool, error) {
	if art, ok := store.Get(ref.Hash); ok {
		if prog, ok := art.Payload.(*pml.Compiled); ok && prog != nil {
			return prog, true, nil
		}
		prog, err := pml.CompileSource(source)
		if err != nil {
			return nil, false, fmt.Errorf("adl: recompiling program module %s: %w", ref.Hash, err)
		}
		store.Attach(ref.Hash, prog)
		return prog, true, nil
	}
	prog, err := pml.CompileSource(source)
	if err != nil {
		return nil, false, fmt.Errorf("blocks: %w", err)
	}
	store.Put(&artifact.Artifact{Ref: ref, Source: source, Payload: prog})
	return prog, false, nil
}
