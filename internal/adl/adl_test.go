package adl

import (
	"fmt"
	"strings"
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/checker"
)

const pingPml = `
byte hits;
proctype Ping(chan esig; chan edat) {
	mtype st;
	edat!1,0,0,0,1;
	esig?st,_;
	hits = hits + 1
}
proctype Pong(chan rsig; chan rdat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	rdat!0,0,0,0,1;
	rsig?st,_;
	rdat?d,sid,sd,sel,rem;
	hits = hits + 1
}
`

func resolver(files map[string]string) Resolver {
	return func(path string) (string, error) {
		if text, ok := files[path]; ok {
			return text, nil
		}
		return "", fmt.Errorf("no such file %q", path)
	}
}

const pingSystem = `
system pingpong {
    components "ping.pml"

    connector Wire {
        send    syn-blocking
        channel single-slot
        receive blocking
    }

    instance p = Ping(send Wire)
    instance q = Pong(recv Wire)

    invariant bounded "hits <= 2"
}
`

func TestLoadAndVerify(t *testing.T) {
	sys, err := Load(pingSystem, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "pingpong" {
		t.Errorf("Name = %q", sys.Name)
	}
	if len(sys.Connectors) != 1 || len(sys.Invariants) != 1 {
		t.Fatalf("connectors=%d invariants=%d", len(sys.Connectors), len(sys.Invariants))
	}
	results := sys.VerifyAll(checker.Options{})
	res := results["safety"]
	if res == nil || !res.OK {
		t.Fatalf("safety = %v", res.Summary())
	}
}

func TestLoadDetectsInvariantViolation(t *testing.T) {
	src := strings.Replace(pingSystem, `"hits <= 2"`, `"hits <= 1"`, 1)
	sys, err := Load(src, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.VerifyAll(checker.Options{})["safety"]
	if res.OK || res.Kind != checker.InvariantViolation {
		t.Fatalf("expected invariant violation, got %s", res.Summary())
	}
}

func TestPortSwapIsOneTokenEdit(t *testing.T) {
	// The plug-and-play property at the ADL level: replacing syn-blocking
	// with asyn-blocking changes only the connector, and verification
	// re-runs against unchanged components.
	async := strings.Replace(pingSystem, "syn-blocking", "asyn-blocking", 1)
	cache := blocks.NewCache()
	if _, err := Load(pingSystem, resolver(map[string]string{"ping.pml": pingPml}), cache); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(async, resolver(map[string]string{"ping.pml": pingPml}), cache); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d; the component models should be reused", hits, misses)
	}
}

func TestInstanceCount(t *testing.T) {
	src := `
system multi {
    components "ping.pml"
    connector Wire {
        send    asyn-blocking
        channel fifo(4)
        receive blocking
    }
    instance p*3 = Ping(send Wire)
}
`
	sys, err := Load(src, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 Pings + 3 send ports + 1 channel = 7 instances.
	if n := sys.Builder.System().NumInstances(); n != 7 {
		t.Errorf("NumInstances = %d, want 7", n)
	}
}

func TestLTLDeclaration(t *testing.T) {
	src := `
system live {
    components "ping.pml"
    connector Wire {
        send    syn-blocking
        channel single-slot
        receive blocking
    }
    instance p = Ping(send Wire)
    instance q = Pong(recv Wire)
    ltl both "[] bounded" { bounded = "hits <= 2" }
}
`
	sys, err := Load(src, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.LTL) != 1 || sys.LTL[0].Name != "both" {
		t.Fatalf("LTL = %+v", sys.LTL)
	}
	res := sys.VerifyAll(checker.Options{})["both"]
	if !res.OK {
		t.Fatalf("[]bounded should hold: %s\n%s", res.Summary(), res.Trace)
	}
	// Completion (hits==2) is reachable even though <>done fails without
	// fairness (the blocking receive port may busy-retry forever).
	target, err := sys.Builder.Program().CompileGlobalExpr("hits == 2")
	if err != nil {
		t.Fatal(err)
	}
	reach := checker.New(sys.Builder.System(), checker.Options{}).CheckReachable(target)
	if !reach.OK {
		t.Fatalf("hits==2 unreachable: %s", reach.Summary())
	}
}

func TestGoalDeclaration(t *testing.T) {
	src := `
system goals {
    components "ping.pml"
    connector Wire { send syn-blocking channel single-slot receive blocking }
    instance p = Ping(send Wire)
    instance q = Pong(recv Wire)
    goal completes "hits == 2"
}
`
	sys, err := Load(src, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Goals) != 1 || sys.Goals[0].Name != "completes" {
		t.Fatalf("Goals = %+v", sys.Goals)
	}
	res := sys.VerifyAll(checker.Options{})["completes"]
	if !res.OK {
		t.Fatalf("goal should hold: %s", res.Summary())
	}

	// A dropping channel makes completion unreachable after a drop.
	lossy := strings.Replace(src, "single-slot", "dropping(1)", 1)
	lossy = strings.Replace(lossy, "syn-blocking", "asyn-blocking", 1)
	sys2, err := Load(lossy, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	res2 := sys2.VerifyAll(checker.Options{})["completes"]
	_ = res2 // one message + size-1 buffer never drops; just exercise the path
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{"", `expected "system"`},
		{"system x {", "unexpected end of file"},
		{"system x { banana }", "unknown declaration"},
		{`system x { connector C { send nope } }`, "unknown send port kind"},
		{`system x { connector C { channel warp } }`, "unknown channel kind"},
		{`system x { connector C { receive maybe } }`, "unknown receive port kind"},
		{`system x { instance a = P(send Nowhere) }`, "unknown connector"},
		{`system x { instance a = P(banana) }`, "expected argument"},
		{`system x { components "missing.pml" }`, `loading "missing.pml"`},
		{`system x { invariant i "1 +" }`, ""},
	}
	for _, tt := range tests {
		_, err := Load(tt.src, resolver(nil), nil)
		if err == nil {
			t.Errorf("Load(%q): expected error", tt.src)
			continue
		}
		if tt.wantSub != "" && !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Load(%q) error = %v, want substring %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestUnknownProctypeRejected(t *testing.T) {
	src := `
system x {
    components "ping.pml"
    connector Wire { send syn-blocking channel single-slot receive blocking }
    instance a = NoSuchProc(send Wire)
}
`
	_, err := Load(src, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err == nil || !strings.Contains(err.Error(), "NoSuchProc") {
		t.Errorf("err = %v", err)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
system c {
    // a line comment
    # a hash comment
    components "ping.pml"
    connector Wire { send syn-blocking channel single-slot receive blocking }
    instance p = Ping(send Wire)
    instance q = Pong(recv Wire)
}
`
	if _, err := Load(src, resolver(map[string]string{"ping.pml": pingPml}), nil); err != nil {
		t.Fatal(err)
	}
}
