package adl

import (
	"errors"
	"strings"
	"testing"
)

// errResolver serves an empty component file for any path, so tests reach
// composition-stage errors without touching the filesystem.
func emptyResolver(string) (string, error) { return "", nil }

// loadErr loads src expecting failure and returns the *Error, failing the
// test when the error is missing or untyped.
func loadErr(t *testing.T, src string) *Error {
	t.Helper()
	_, err := Load(src, emptyResolver, nil)
	if err == nil {
		t.Fatalf("Load succeeded, want error\nsource:\n%s", src)
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T) is not an *adl.Error", err, err)
	}
	return ae
}

// TestErrorPositions drives the parser error paths that become HTTP 400
// bodies in the verification service and pins down their line/column
// positions exactly.
func TestErrorPositions(t *testing.T) {
	tests := []struct {
		name     string
		src      string
		wantLine int
		wantCol  int
		wantSub  string
	}{
		{
			name:     "truncated after system header",
			src:      "system s {\n    components \"c.pml\"\n",
			wantLine: 3,
			wantCol:  1,
			wantSub:  "unexpected end of file",
		},
		{
			name:     "truncated inside connector",
			src:      "system s {\n    connector C {\n        send syn-blocking",
			wantLine: 3,
			wantCol:  26,
			wantSub:  "expected",
		},
		{
			name:     "unknown send port kind",
			src:      "system s {\n    connector C {\n        send warp-drive\n    }\n}",
			wantLine: 3,
			wantCol:  14,
			wantSub:  `unknown send port kind "warp-drive"`,
		},
		{
			name:     "unknown receive port kind",
			src:      "system s {\n    connector C {\n        send syn-blocking\n        receive psychic\n    }\n}",
			wantLine: 4,
			wantCol:  17,
			wantSub:  `unknown receive port kind "psychic"`,
		},
		{
			name:     "unknown channel kind",
			src:      "system s {\n    connector C {\n        channel wormhole(2)\n    }\n}",
			wantLine: 3,
			wantCol:  17,
			wantSub:  `unknown channel kind "wormhole"`,
		},
		{
			name:     "unknown declaration",
			src:      "system s {\n    blueprint C {}\n}",
			wantLine: 2,
			wantCol:  5,
			wantSub:  `unknown declaration "blueprint"`,
		},
		{
			name:     "unterminated string",
			src:      "system s {\n    components \"c.pml\n}",
			wantLine: 2,
			wantCol:  16,
			wantSub:  "unterminated string",
		},
		{
			name: "duplicate connector",
			src: "system s {\n" +
				"    connector C { send syn-blocking; channel fifo(2); receive blocking }\n" +
				"    connector C { send syn-blocking; channel fifo(2); receive blocking }\n}",
			wantLine: 3,
			wantCol:  5,
			wantSub:  `duplicate connector "C"`,
		},
		{
			name: "attachment to unknown connector",
			src: "system s {\n" +
				"    connector C { send syn-blocking; channel fifo(2); receive blocking }\n" +
				"    instance p = PnPSender(send Ghost, 2, 0)\n}",
			wantLine: 3,
			wantCol:  33,
			wantSub:  `unknown connector "Ghost"`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ae := loadErr(t, tt.src)
			if ae.Line != tt.wantLine || ae.Col != tt.wantCol {
				t.Errorf("position = line %d, col %d; want line %d, col %d (error: %v)",
					ae.Line, ae.Col, tt.wantLine, tt.wantCol, ae)
			}
			if !strings.Contains(ae.Msg, tt.wantSub) {
				t.Errorf("message %q does not contain %q", ae.Msg, tt.wantSub)
			}
			if !strings.Contains(ae.Error(), "col") {
				t.Errorf("rendered error %q should include the column", ae.Error())
			}
		})
	}
}

// TestPropertySources checks the canonical property records that the
// verification service hashes: stable across invariant declaration order
// and distinct across property edits.
func TestPropertySources(t *testing.T) {
	globals := func(string) (string, error) { return "byte x, y;", nil }
	load := func(src string) *System {
		t.Helper()
		sys, err := Load(src, globals, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	base := `system s {
    components "g.pml"
    invariant a "x > 0"
    invariant b "y > 0"
    goal g "x == 0"
    ltl live "<> p" { p = "x > 1" }
}`
	reordered := `system s {
    components "g.pml"
    invariant b "y > 0"
    invariant a "x > 0"
    goal g "x == 0"
    ltl live "<> p" { p = "x > 1" }
}`
	edited := strings.Replace(base, `"y > 0"`, `"y > 1"`, 1)

	s1, s2, s3 := load(base), load(reordered), load(edited)
	key := func(s *System) map[string]string {
		m := map[string]string{}
		for _, p := range s.Sources {
			m[p.Name] = p.Kind + ":" + p.Text
		}
		return m
	}
	k1, k2, k3 := key(s1), key(s2), key(s3)
	for _, name := range []string{"safety", "g", "live"} {
		if k1[name] == "" {
			t.Fatalf("missing property source %q", name)
		}
		if k1[name] != k2[name] {
			t.Errorf("%s: declaration order changed the canonical text:\n%s\n%s", name, k1[name], k2[name])
		}
	}
	if k1["safety"] == k3["safety"] {
		t.Errorf("editing an invariant must change the safety source text")
	}
	if k1["live"] != k3["live"] {
		t.Errorf("editing an invariant must not change the LTL source text")
	}
}
