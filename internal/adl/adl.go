// Package adl implements a small textual architecture description
// language for Plug-and-Play systems — the scriptable stand-in for the
// paper's ArchStudio-based prototype tool. An ADL file names component
// models (pml sources), declares connectors as block triples, attaches
// component instances to connector endpoints, and states the properties
// to verify. Swapping a port kind is a one-token edit.
//
// Example:
//
//	system bridge {
//	    components "cars.pml"
//
//	    connector BlueEnter {
//	        send    syn-blocking
//	        channel fifo(2)
//	        receive blocking
//	    }
//
//	    instance car0 = Car(send BlueEnter, send RedExit, 0)
//	    instance ctl  = Controller(recv BlueEnter, recv BlueExit, 1, 1)
//
//	    invariant safety "!(blueOn > 0 && redOn > 0)"
//	    ltl eventually_crossed "<> crossed" { crossed = "done > 0" }
//
//	    faults {
//	        seed 42
//	        drop BlueEnter 30
//	        duplicate * 10 count 2 after 3
//	    }
//	}
//
// The faults block declares a deterministic runtime fault plan (package
// faults): each rule is kind, target connector (or * for all), a percent
// rate, and optional count/after/delay clauses. The plan does not change
// the formal model — use a `lossy(N)` channel for that — but it is part
// of the system's verification cache identity.
package adl

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pnp/internal/artifact"
	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/faults"
	"pnp/internal/model"
	"pnp/internal/obs/tracing"
	"pnp/internal/pml"
)

// LTLProperty is a named LTL formula with its atomic propositions.
type LTLProperty struct {
	Name    string
	Formula string
	Props   map[string]pml.RExpr
}

// Goal is a named AG EF property: the expression must stay reachable from
// every reachable state (fairness-independent delivery guarantees).
type Goal struct {
	Name string
	Expr pml.RExpr
}

// PropertySource records the declared source form of one property. The
// verification service hashes it (together with the composed model and
// the canonicalized checker options) to content-address cached results.
type PropertySource struct {
	Kind string // "invariant", "goal", or "ltl"
	Name string // result key: "safety" for invariants, else the property name
	Text string // canonical source text of the property
}

// System is a loaded, fully composed architecture ready for verification.
type System struct {
	Name       string
	Builder    *blocks.Builder
	Connectors map[string]*blocks.Connector
	Invariants []checker.Invariant
	Goals      []Goal
	LTL        []LTLProperty
	// Sources lists every declared property in canonical source form, in
	// the order VerifyAll keys them ("safety" first when any invariant is
	// declared).
	Sources []PropertySource
	// Faults is the system's declared fault plan (nil when the file has no
	// faults block). It drives runtime injection when the system is
	// executed and joins the verification service's cache key, so the same
	// design under a different plan is a different cache entry.
	Faults *faults.Plan
	// Modules is the design's module DAG in compilation order — library,
	// components, linked program, connectors — with per-module reuse
	// flags. Populated only by LoadModular; the counters summarize it.
	Modules         []artifact.Info
	ModulesReused   int
	ModulesCompiled int
}

// Resolver loads referenced component files; path is the string given in
// the ADL `components` clause.
type Resolver func(path string) (string, error)

// Error reports an ADL syntax or composition error with its source
// position (Col is 1-based; 0 when only the line is known).
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("adl: line %d, col %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("adl: line %d: %s", e.Line, e.Msg)
}

var sendKinds = map[string]blocks.SendPortKind{
	"asyn-nonblocking":  blocks.AsynNonblockingSend,
	"asyn-blocking":     blocks.AsynBlockingSend,
	"asyn-checking":     blocks.AsynCheckingSend,
	"syn-blocking":      blocks.SynBlockingSend,
	"syn-checking":      blocks.SynCheckingSend,
	"AsynNbSendPort":    blocks.AsynNonblockingSend,
	"AsynBlSendPort":    blocks.AsynBlockingSend,
	"AsynCheckSendPort": blocks.AsynCheckingSend,
	"SynBlSendPort":     blocks.SynBlockingSend,
	"SynCheckSendPort":  blocks.SynCheckingSend,
}

var recvKinds = map[string]blocks.RecvPortKind{
	"blocking":    blocks.BlockingRecv,
	"nonblocking": blocks.NonblockingRecv,
	"BlRecvPort":  blocks.BlockingRecv,
	"NbRecvPort":  blocks.NonblockingRecv,
}

var chanKinds = map[string]blocks.ChannelKind{
	"single-slot": blocks.SingleSlot,
	"fifo":        blocks.FIFOQueue,
	"priority":    blocks.PriorityQueue,
	"dropping":    blocks.DroppingBuffer,
	"lossy":       blocks.LossyBuffer,
}

// --- parsed (pre-composition) form ---

type parsedConnector struct {
	name string
	spec blocks.ConnectorSpec
	line int
	col  int
}

type parsedArg struct {
	kind string // "send", "recv", "int"
	conn string
	n    int64
	line int
	col  int
}

type parsedInstance struct {
	name  string
	count int
	proc  string
	args  []parsedArg
	line  int
	col   int
}

type parsedFaultRule struct {
	rule faults.Rule
	line int
	col  int
}

type parsedFaults struct {
	seed  uint64
	rules []parsedFaultRule
	line  int
	col   int
}

type parsedFile struct {
	name       string
	components []string // paths
	connectors []parsedConnector
	instances  []parsedInstance
	invariants [][2]string // name, expr
	goals      [][2]string // name, expr
	ltl        []parsedLTL
	faults     *parsedFaults
}

type parsedLTL struct {
	name    string
	formula string
	props   map[string]string
}

// Load parses src and composes the described system. Component files are
// fetched through resolve; a non-nil cache reuses compiled models.
//
// Load compiles the design as one monolithic source blob. Services that
// want per-module reuse accounting, bounded memory, and cross-restart
// artifact sharing should call LoadModular instead; both paths compose
// byte-identical systems (same Builder source, same ModelHash).
func Load(src string, resolve Resolver, cache *blocks.Cache) (*System, error) {
	pf, err := parse(src)
	if err != nil {
		return nil, err
	}
	texts, err := resolveComponents(pf, resolve)
	if err != nil {
		return nil, err
	}
	var compSrc strings.Builder
	for _, text := range texts {
		compSrc.WriteString(text)
		compSrc.WriteByte('\n')
	}
	b, err := blocks.NewBuilder(compSrc.String(), cache)
	if err != nil {
		return nil, err
	}
	return compose(pf, b)
}

// resolveComponents fetches every referenced component file, in
// declaration order.
func resolveComponents(pf *parsedFile, resolve Resolver) ([]string, error) {
	texts := make([]string, 0, len(pf.components))
	for _, path := range pf.components {
		if resolve == nil {
			return nil, fmt.Errorf("adl: system references %q but no resolver was given", path)
		}
		text, err := resolve(path)
		if err != nil {
			return nil, fmt.Errorf("adl: loading %q: %w", path, err)
		}
		texts = append(texts, text)
	}
	return texts, nil
}

// compose instantiates the parsed design against an already-built
// Builder: connectors, instances, properties, and the fault plan. Both
// load paths (monolithic and modular) funnel through here, so they
// cannot drift.
func compose(pf *parsedFile, b *blocks.Builder) (*System, error) {
	sys := &System{
		Name:       pf.name,
		Builder:    b,
		Connectors: make(map[string]*blocks.Connector, len(pf.connectors)),
	}
	for _, pc := range pf.connectors {
		if _, dup := sys.Connectors[pc.name]; dup {
			return nil, &Error{Line: pc.line, Col: pc.col, Msg: fmt.Sprintf("duplicate connector %q", pc.name)}
		}
		conn, err := b.NewConnector(pc.name, pc.spec)
		if err != nil {
			return nil, &Error{Line: pc.line, Col: pc.col, Msg: err.Error()}
		}
		sys.Connectors[pc.name] = conn
	}
	for _, pi := range pf.instances {
		for k := 0; k < pi.count; k++ {
			label := pi.name
			if pi.count > 1 {
				label = fmt.Sprintf("%s%d", pi.name, k)
			}
			args := make([]model.Arg, 0, len(pi.args)*2)
			for ai, pa := range pi.args {
				switch pa.kind {
				case "int":
					args = append(args, model.Int(pa.n))
				case "send", "recv":
					conn, ok := sys.Connectors[pa.conn]
					if !ok {
						return nil, &Error{Line: pa.line, Col: pa.col, Msg: fmt.Sprintf("unknown connector %q", pa.conn)}
					}
					var ep blocks.Endpoint
					var err error
					epName := fmt.Sprintf("%s.arg%d", label, ai)
					if pa.kind == "send" {
						ep, err = conn.AddSender(epName)
					} else {
						ep, err = conn.AddReceiver(epName)
					}
					if err != nil {
						return nil, &Error{Line: pa.line, Col: pa.col, Msg: err.Error()}
					}
					args = append(args, model.Chan(ep.Sig), model.Chan(ep.Dat))
				}
			}
			if _, err := b.Spawn(pi.proc, args...); err != nil {
				return nil, &Error{Line: pi.line, Col: pi.col, Msg: err.Error()}
			}
		}
	}
	for _, inv := range pf.invariants {
		ci, err := checker.InvariantFromSource(b.Program(), inv[0], inv[1])
		if err != nil {
			return nil, err
		}
		sys.Invariants = append(sys.Invariants, ci)
	}
	for _, g := range pf.goals {
		expr, err := b.Program().CompileGlobalExpr(g[1])
		if err != nil {
			return nil, fmt.Errorf("adl: goal %s: %w", g[0], err)
		}
		sys.Goals = append(sys.Goals, Goal{Name: g[0], Expr: expr})
	}
	for _, pl := range pf.ltl {
		props, err := checker.PropsFromSource(b.Program(), pl.props)
		if err != nil {
			return nil, err
		}
		sys.LTL = append(sys.LTL, LTLProperty{Name: pl.name, Formula: pl.formula, Props: props})
	}
	sys.Sources = propertySources(pf)
	if pf.faults != nil {
		plan := &faults.Plan{Seed: pf.faults.seed}
		for _, pr := range pf.faults.rules {
			// Message-site rules must target a declared connector; crash
			// rules name supervised runtime components the ADL cannot see.
			if pr.rule.Kind != faults.Crash && pr.rule.Target != "*" && pr.rule.Target != "" {
				if _, ok := sys.Connectors[pr.rule.Target]; !ok {
					return nil, &Error{Line: pr.line, Col: pr.col,
						Msg: fmt.Sprintf("fault rule targets unknown connector %q", pr.rule.Target)}
				}
			}
			plan.Rules = append(plan.Rules, pr.rule)
		}
		if err := plan.Validate(); err != nil {
			return nil, &Error{Line: pf.faults.line, Col: pf.faults.col, Msg: err.Error()}
		}
		sys.Faults = plan
	}
	return sys, nil
}

// propertySources derives the canonical source record of every property,
// keyed the way VerifyAll keys its results. The safety entry concatenates
// all invariants sorted by name, so declaration order does not affect the
// content address; LTL proposition definitions are likewise sorted.
func propertySources(pf *parsedFile) []PropertySource {
	invs := append([][2]string(nil), pf.invariants...)
	sort.Slice(invs, func(i, j int) bool { return invs[i][0] < invs[j][0] })
	var b strings.Builder
	for _, inv := range invs {
		fmt.Fprintf(&b, "%s=%q;", inv[0], inv[1])
	}
	out := []PropertySource{{Kind: "invariant", Name: "safety", Text: b.String()}}
	for _, g := range pf.goals {
		out = append(out, PropertySource{Kind: "goal", Name: g[0], Text: fmt.Sprintf("%q", g[1])})
	}
	for _, pl := range pf.ltl {
		names := make([]string, 0, len(pl.props))
		for n := range pl.props {
			names = append(names, n)
		}
		sort.Strings(names)
		var lb strings.Builder
		fmt.Fprintf(&lb, "%q{", pl.formula)
		for _, n := range names {
			fmt.Fprintf(&lb, "%s=%q;", n, pl.props[n])
		}
		lb.WriteByte('}')
		out = append(out, PropertySource{Kind: "ltl", Name: pl.name, Text: lb.String()})
	}
	return out
}

// VerifyAll checks every declared property: the safety search with all
// invariants, then each LTL property. Results are keyed by property name;
// the safety run is keyed "safety". With opts.Tracer set, each property
// gets a "property:<name>" span wrapping its checker phases — the same
// hierarchy the verification service records for remote jobs.
func (s *System) VerifyAll(opts checker.Options) map[string]*checker.Result {
	out := make(map[string]*checker.Result, 1+len(s.LTL))

	// propOpts wraps one property's run in a span when tracing is on and
	// gives each property its own checkpoint file: one submission carries
	// several searchable properties, so a shared caller-provided key is
	// suffixed per property — mirroring how the verification service
	// derives its checkpoint keys.
	propOpts := func(o checker.Options, name, kind string) (checker.Options, *tracing.Span) {
		if o.Checkpoint != nil && o.Checkpoint.Key != "" {
			ck := *o.Checkpoint
			ck.Key = ck.Key + "-" + name
			o.Checkpoint = &ck
		}
		if o.Tracer == nil {
			return o, nil
		}
		ctx := o.Context
		if ctx == nil {
			ctx = context.Background()
		}
		pctx, span := o.Tracer.StartSpan(ctx, "property:"+name, tracing.A("kind", kind))
		o.Context = pctx
		return o, span
	}
	finish := func(span *tracing.Span, res *checker.Result) *checker.Result {
		if span != nil {
			span.SetAttr("ok", fmt.Sprint(res.OK))
			span.End()
		}
		return res
	}

	safetyOpts := opts
	safetyOpts.Invariants = append(append([]checker.Invariant(nil), opts.Invariants...), s.Invariants...)
	so, span := propOpts(safetyOpts, "safety", "invariant")
	out["safety"] = finish(span, checker.New(s.Builder.System(), so).CheckSafety())
	for _, g := range s.Goals {
		o, span := propOpts(opts, g.Name, "goal")
		out[g.Name] = finish(span, checker.New(s.Builder.System(), o).CheckEventuallyReachable(g.Expr))
	}
	for _, p := range s.LTL {
		o, span := propOpts(opts, p.Name, "ltl")
		out[p.Name] = finish(span, checker.New(s.Builder.System(), o).CheckLTL(p.Formula, p.Props))
	}
	return out
}
