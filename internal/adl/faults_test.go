package adl

import (
	"strings"
	"testing"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/faults"
)

const faultsSystem = `
system faulty {
    components "ping.pml"

    connector Wire {
        send    asyn-blocking
        channel lossy(2)
        receive blocking
    }

    instance p = Ping(send Wire)
    instance q = Pong(recv Wire)

    faults {
        seed 42
        drop Wire 30
        duplicate * 10 count 2 after 3
        stall Wire 100 delay 2
        delay Wire 50 delay 1
        crash worker 100 count 1
    }
}
`

func TestFaultsBlockParsed(t *testing.T) {
	sys, err := Load(faultsSystem, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Connectors["Wire"].Spec().Channel != blocks.LossyBuffer {
		t.Errorf("channel lossy(2) parsed as %v", sys.Connectors["Wire"].Spec().Channel)
	}
	p := sys.Faults
	if p == nil {
		t.Fatal("faults block not loaded")
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	want := []faults.Rule{
		{Kind: faults.Drop, Target: "Wire", Rate: 0.3},
		{Kind: faults.Duplicate, Target: "*", Rate: 0.1, Count: 2, After: 3},
		{Kind: faults.Stall, Target: "Wire", Rate: 1, Delay: 2 * time.Millisecond},
		{Kind: faults.Delay, Target: "Wire", Rate: 0.5, Delay: time.Millisecond},
		{Kind: faults.Crash, Target: "worker", Rate: 1, Count: 1},
	}
	if len(p.Rules) != len(want) {
		t.Fatalf("got %d rules, want %d: %s", len(p.Rules), len(want), p)
	}
	for i, w := range want {
		if p.Rules[i] != w {
			t.Errorf("rule %d = %+v, want %+v", i, p.Rules[i], w)
		}
	}
}

func TestSystemWithoutFaultsBlockHasNilPlan(t *testing.T) {
	sys, err := Load(pingSystem, resolver(map[string]string{"ping.pml": pingPml}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Faults != nil {
		t.Fatalf("Faults = %v, want nil", sys.Faults)
	}
	// A nil plan's canonical form is empty, so fault-free systems keep
	// their pre-faults cache identity.
	if sys.Faults.Canonical() != "" {
		t.Fatal("nil plan should encode empty")
	}
}

func TestFaultsBlockErrors(t *testing.T) {
	wrap := func(body string) string {
		return "system s {\n    connector C {\n        send asyn-blocking\n        channel fifo(2)\n        receive blocking\n    }\n" + body + "\n}"
	}
	tests := []struct {
		name    string
		src     string
		wantSub string
	}{
		{
			name:    "unknown fault kind",
			src:     wrap("    faults { explode C 10 }"),
			wantSub: `unknown fault kind "explode"`,
		},
		{
			name:    "rate out of range",
			src:     wrap("    faults { drop C 250 }"),
			wantSub: "percent in 0..100",
		},
		{
			name:    "missing target",
			src:     wrap("    faults { drop 10 }"),
			wantSub: "expected fault target",
		},
		{
			name:    "unknown connector target",
			src:     wrap("    faults { drop Ghost 10 }"),
			wantSub: `unknown connector "Ghost"`,
		},
		{
			name:    "duplicate faults block",
			src:     wrap("    faults { seed 1 }\n    faults { seed 2 }"),
			wantSub: "duplicate faults block",
		},
		{
			name:    "bad seed",
			src:     wrap("    faults { seed -3 }"),
			wantSub: "bad seed",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ae := loadErr(t, tc.src)
			if !strings.Contains(ae.Msg, tc.wantSub) {
				t.Errorf("error %q does not mention %q", ae.Msg, tc.wantSub)
			}
			if ae.Line <= 1 || ae.Col < 1 {
				t.Errorf("error lacks a useful position: %+v", ae)
			}
		})
	}
}

func TestCrashTargetNotConnectorChecked(t *testing.T) {
	// Crash rules name supervised runtime components, which the ADL
	// cannot resolve — any target must be accepted.
	src := `
system s {
    connector C {
        send asyn-blocking
        channel fifo(2)
        receive blocking
    }
    faults { crash anything 100 }
}`
	sys, err := Load(src, emptyResolver, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Faults.Rules) != 1 || sys.Faults.Rules[0].Kind != faults.Crash {
		t.Fatalf("crash rule not loaded: %s", sys.Faults)
	}
}
