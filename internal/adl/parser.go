package adl

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pnp/internal/faults"
)

type adlToken struct {
	kind string // "ident", "string", "number", or the punctuation itself
	text string
	line int
	col  int // 1-based column of the token's first character
}

type adlLexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first character
}

// col returns the 1-based column of byte offset pos on the current line.
func (lx *adlLexer) col(pos int) int { return pos - lx.lineStart + 1 }

func lexADL(src string) ([]adlToken, error) {
	lx := &adlLexer{src: src, line: 1}
	var out []adlToken
	for lx.pos < len(src) {
		c := src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
			lx.lineStart = lx.pos
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(src) && src[lx.pos+1] == '/':
			for lx.pos < len(src) && src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '#':
			for lx.pos < len(src) && src[lx.pos] != '\n' {
				lx.pos++
			}
		case strings.ContainsRune("{}()=*,;", rune(c)):
			out = append(out, adlToken{kind: string(c), line: lx.line, col: lx.col(lx.pos)})
			lx.pos++
		case c == '"':
			start := lx.pos + 1
			j := start
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, &Error{Line: lx.line, Col: lx.col(lx.pos), Msg: "unterminated string"}
				}
				j++
			}
			if j >= len(src) {
				return nil, &Error{Line: lx.line, Col: lx.col(lx.pos), Msg: "unterminated string"}
			}
			out = append(out, adlToken{kind: "string", text: src[start:j], line: lx.line, col: lx.col(lx.pos)})
			lx.pos = j + 1
		case c == '-' || c >= '0' && c <= '9':
			start := lx.pos
			lx.pos++
			for lx.pos < len(src) && src[lx.pos] >= '0' && src[lx.pos] <= '9' {
				lx.pos++
			}
			out = append(out, adlToken{kind: "number", text: src[start:lx.pos], line: lx.line, col: lx.col(start)})
		case isADLIdent(c):
			start := lx.pos
			for lx.pos < len(src) && (isADLIdent(src[lx.pos]) || src[lx.pos] == '-') {
				lx.pos++
			}
			out = append(out, adlToken{kind: "ident", text: src[start:lx.pos], line: lx.line, col: lx.col(start)})
		default:
			return nil, &Error{Line: lx.line, Col: lx.col(lx.pos), Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	out = append(out, adlToken{kind: "eof", line: lx.line, col: lx.col(lx.pos)})
	return out, nil
}

func isADLIdent(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type adlParser struct {
	toks []adlToken
	pos  int
}

func (p *adlParser) cur() adlToken { return p.toks[p.pos] }

func (p *adlParser) next() adlToken {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *adlParser) accept(kind string) bool {
	if p.cur().kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *adlParser) expect(kind string) (adlToken, error) {
	t := p.cur()
	if t.kind != kind {
		return t, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected %s, found %s %q", kind, t.kind, t.text)}
	}
	return p.next(), nil
}

func (p *adlParser) expectIdent(word string) error {
	t := p.cur()
	if t.kind != "ident" || t.text != word {
		return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected %q, found %q", word, t.text)}
	}
	p.next()
	return nil
}

func parse(src string) (*parsedFile, error) {
	toks, err := lexADL(src)
	if err != nil {
		return nil, err
	}
	p := &adlParser{toks: toks}
	if err := p.expectIdent("system"); err != nil {
		return nil, err
	}
	name, err := p.expect("ident")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	pf := &parsedFile{name: name.text}
	for !p.accept("}") {
		t := p.cur()
		if t.kind == "eof" {
			return nil, &Error{Line: t.line, Col: t.col, Msg: "unexpected end of file (missing })"}
		}
		if t.kind != "ident" {
			return nil, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected declaration, found %q", t.text)}
		}
		switch t.text {
		case "components":
			p.next()
			path, err := p.expect("string")
			if err != nil {
				return nil, err
			}
			pf.components = append(pf.components, path.text)
		case "connector":
			c, err := p.connectorDecl()
			if err != nil {
				return nil, err
			}
			pf.connectors = append(pf.connectors, c)
		case "instance":
			in, err := p.instanceDecl()
			if err != nil {
				return nil, err
			}
			pf.instances = append(pf.instances, in)
		case "invariant":
			p.next()
			nm, err := p.expect("ident")
			if err != nil {
				return nil, err
			}
			expr, err := p.expect("string")
			if err != nil {
				return nil, err
			}
			pf.invariants = append(pf.invariants, [2]string{nm.text, expr.text})
		case "goal":
			p.next()
			nm, err := p.expect("ident")
			if err != nil {
				return nil, err
			}
			expr, err := p.expect("string")
			if err != nil {
				return nil, err
			}
			pf.goals = append(pf.goals, [2]string{nm.text, expr.text})
		case "ltl":
			l, err := p.ltlDecl()
			if err != nil {
				return nil, err
			}
			pf.ltl = append(pf.ltl, l)
		case "faults":
			if pf.faults != nil {
				return nil, &Error{Line: t.line, Col: t.col, Msg: "duplicate faults block"}
			}
			f, err := p.faultsDecl()
			if err != nil {
				return nil, err
			}
			pf.faults = f
		default:
			return nil, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("unknown declaration %q", t.text)}
		}
		p.accept(";")
	}
	return pf, nil
}

func (p *adlParser) connectorDecl() (parsedConnector, error) {
	kw := p.cur()
	p.next() // connector
	name, err := p.expect("ident")
	if err != nil {
		return parsedConnector{}, err
	}
	if _, err := p.expect("{"); err != nil {
		return parsedConnector{}, err
	}
	var pc parsedConnector
	pc.name = name.text
	pc.line = kw.line
	pc.col = kw.col
	for !p.accept("}") {
		t := p.cur()
		if t.kind != "ident" {
			return parsedConnector{}, &Error{Line: t.line, Col: t.col, Msg: "expected send/channel/receive clause"}
		}
		switch t.text {
		case "send":
			p.next()
			k, err := p.expect("ident")
			if err != nil {
				return parsedConnector{}, err
			}
			kind, ok := sendKinds[k.text]
			if !ok {
				return parsedConnector{}, &Error{Line: k.line, Col: k.col, Msg: fmt.Sprintf("unknown send port kind %q", k.text)}
			}
			pc.spec.Send = kind
		case "receive":
			p.next()
			k, err := p.expect("ident")
			if err != nil {
				return parsedConnector{}, err
			}
			kind, ok := recvKinds[k.text]
			if !ok {
				return parsedConnector{}, &Error{Line: k.line, Col: k.col, Msg: fmt.Sprintf("unknown receive port kind %q", k.text)}
			}
			pc.spec.Recv = kind
		case "channel":
			p.next()
			k, err := p.expect("ident")
			if err != nil {
				return parsedConnector{}, err
			}
			kind, ok := chanKinds[k.text]
			if !ok {
				return parsedConnector{}, &Error{Line: k.line, Col: k.col, Msg: fmt.Sprintf("unknown channel kind %q", k.text)}
			}
			pc.spec.Channel = kind
			if p.accept("(") {
				n, err := p.expect("number")
				if err != nil {
					return parsedConnector{}, err
				}
				v, convErr := strconv.Atoi(n.text)
				if convErr != nil {
					return parsedConnector{}, &Error{Line: n.line, Col: n.col, Msg: "bad channel size"}
				}
				pc.spec.Size = v
				if _, err := p.expect(")"); err != nil {
					return parsedConnector{}, err
				}
			}
		default:
			return parsedConnector{}, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("unknown connector clause %q", t.text)}
		}
		p.accept(";")
	}
	return pc, nil
}

func (p *adlParser) instanceDecl() (parsedInstance, error) {
	kw := p.cur()
	p.next() // instance
	name, err := p.expect("ident")
	if err != nil {
		return parsedInstance{}, err
	}
	in := parsedInstance{name: name.text, count: 1, line: kw.line, col: kw.col}
	if p.accept("*") {
		n, err := p.expect("number")
		if err != nil {
			return parsedInstance{}, err
		}
		v, convErr := strconv.Atoi(n.text)
		if convErr != nil || v < 1 {
			return parsedInstance{}, &Error{Line: n.line, Col: n.col, Msg: "bad instance count"}
		}
		in.count = v
	}
	if _, err := p.expect("="); err != nil {
		return parsedInstance{}, err
	}
	proc, err := p.expect("ident")
	if err != nil {
		return parsedInstance{}, err
	}
	in.proc = proc.text
	if _, err := p.expect("("); err != nil {
		return parsedInstance{}, err
	}
	if !p.accept(")") {
		for {
			a, err := p.arg()
			if err != nil {
				return parsedInstance{}, err
			}
			in.args = append(in.args, a)
			if p.accept(")") {
				break
			}
			if _, err := p.expect(","); err != nil {
				return parsedInstance{}, err
			}
		}
	}
	return in, nil
}

func (p *adlParser) arg() (parsedArg, error) {
	t := p.cur()
	switch {
	case t.kind == "number":
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return parsedArg{}, &Error{Line: t.line, Col: t.col, Msg: "bad number"}
		}
		return parsedArg{kind: "int", n: v, line: t.line, col: t.col}, nil
	case t.kind == "ident" && (t.text == "send" || t.text == "recv"):
		p.next()
		conn, err := p.expect("ident")
		if err != nil {
			return parsedArg{}, err
		}
		return parsedArg{kind: t.text, conn: conn.text, line: t.line, col: conn.col}, nil
	default:
		return parsedArg{}, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected argument, found %q", t.text)}
	}
}

// peek returns the token after the current one (eof-safe).
func (p *adlParser) peek() adlToken {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

// faultsDecl parses `faults { seed N; <kind> <target|*> <percent>
// [count N] [after N] [delay N] ... }`. Rates are integer percents;
// delay is in milliseconds.
func (p *adlParser) faultsDecl() (*parsedFaults, error) {
	kw := p.next() // faults
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	f := &parsedFaults{line: kw.line, col: kw.col}
	for !p.accept("}") {
		t := p.cur()
		if t.kind != "ident" {
			return nil, &Error{Line: t.line, Col: t.col, Msg: "expected seed or fault rule"}
		}
		if t.text == "seed" {
			p.next()
			n, err := p.expect("number")
			if err != nil {
				return nil, err
			}
			v, convErr := strconv.ParseUint(n.text, 10, 64)
			if convErr != nil {
				return nil, &Error{Line: n.line, Col: n.col, Msg: "bad seed"}
			}
			f.seed = v
			p.accept(";")
			continue
		}
		kind, ok := faults.KindFromString(t.text)
		if !ok {
			return nil, &Error{Line: t.line, Col: t.col,
				Msg: fmt.Sprintf("unknown fault kind %q (drop, duplicate, delay, stall, crash)", t.text)}
		}
		p.next()
		var target string
		switch tt := p.cur(); tt.kind {
		case "ident":
			target = tt.text
			p.next()
		case "*":
			target = "*"
			p.next()
		default:
			return nil, &Error{Line: tt.line, Col: tt.col, Msg: "expected fault target (connector name or *)"}
		}
		pct, err := p.expect("number")
		if err != nil {
			return nil, err
		}
		pv, convErr := strconv.Atoi(pct.text)
		if convErr != nil || pv < 0 || pv > 100 {
			return nil, &Error{Line: pct.line, Col: pct.col, Msg: "fault rate must be a percent in 0..100"}
		}
		r := faults.Rule{Kind: kind, Target: target, Rate: float64(pv) / 100}
		// Optional clauses. `delay` doubles as a fault kind: a clause is
		// `delay <number>`, a rule is `delay <target> <number>`, so one
		// token of lookahead disambiguates.
		for {
			c := p.cur()
			if c.kind != "ident" {
				break
			}
			if c.text != "count" && c.text != "after" && c.text != "delay" {
				break
			}
			if c.text == "delay" && p.peek().kind != "number" {
				break // a new delay-kind rule, not a clause
			}
			p.next()
			n, err := p.expect("number")
			if err != nil {
				return nil, err
			}
			v, convErr := strconv.Atoi(n.text)
			if convErr != nil || v < 0 {
				return nil, &Error{Line: n.line, Col: n.col, Msg: fmt.Sprintf("bad %s value", c.text)}
			}
			switch c.text {
			case "count":
				r.Count = v
			case "after":
				r.After = v
			case "delay":
				r.Delay = time.Duration(v) * time.Millisecond
			}
		}
		f.rules = append(f.rules, parsedFaultRule{rule: r, line: t.line, col: t.col})
		p.accept(";")
	}
	return f, nil
}

func (p *adlParser) ltlDecl() (parsedLTL, error) {
	p.next() // ltl
	name, err := p.expect("ident")
	if err != nil {
		return parsedLTL{}, err
	}
	formula, err := p.expect("string")
	if err != nil {
		return parsedLTL{}, err
	}
	l := parsedLTL{name: name.text, formula: formula.text, props: map[string]string{}}
	if p.accept("{") {
		for !p.accept("}") {
			nm, err := p.expect("ident")
			if err != nil {
				return parsedLTL{}, err
			}
			if _, err := p.expect("="); err != nil {
				return parsedLTL{}, err
			}
			expr, err := p.expect("string")
			if err != nil {
				return parsedLTL{}, err
			}
			l.props[nm.text] = expr.text
			p.accept(";")
		}
	}
	return l, nil
}
