package adl

import (
	"fmt"
	"strconv"
	"strings"

	"pnp/internal/blocks"
)

// This file is the structural-edit surface of the ADL: the design-space
// sweep engine (internal/sweep) varies one connector of a base design
// across many block triples, and it does so by rewriting the source text
// rather than by mutating a composed system, so that every generated
// cell is an ordinary ADL document — submittable to a verification
// service, diffable, and reproducible outside the sweep.

// ConnectorDecl is the declared form of one connector in an ADL source,
// available without resolving the design's component files.
type ConnectorDecl struct {
	Name string
	Spec blocks.ConnectorSpec
}

// Connectors parses src and lists its connector declarations in order.
// Unlike Load it needs no component resolver: only the architecture's
// syntax is examined.
func Connectors(src string) ([]ConnectorDecl, error) {
	pf, err := parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]ConnectorDecl, 0, len(pf.connectors))
	for _, pc := range pf.connectors {
		out = append(out, ConnectorDecl{Name: pc.name, Spec: pc.spec})
	}
	return out, nil
}

// ComponentRefs parses src and returns the component file paths its
// `components` clauses reference, in declaration order. Clients use it
// to inline local component files when submitting a design to a remote
// verification service.
func ComponentRefs(src string) ([]string, error) {
	pf, err := parse(src)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), pf.components...), nil
}

// ParseSendKind resolves an ADL send-port keyword ("syn-blocking") or
// proctype name ("SynBlSendPort") to its kind.
func ParseSendKind(tok string) (blocks.SendPortKind, bool) {
	k, ok := sendKinds[tok]
	return k, ok
}

// ParseRecvKind resolves an ADL receive-port keyword to its kind.
func ParseRecvKind(tok string) (blocks.RecvPortKind, bool) {
	k, ok := recvKinds[tok]
	return k, ok
}

// ParseChannel resolves an ADL channel clause — "fifo(2)", "lossy(1)",
// "single-slot" — to its kind and size. A sized kind written without a
// size defaults to 1.
func ParseChannel(tok string) (blocks.ChannelKind, int, error) {
	name, size := tok, 0
	if i := strings.IndexByte(tok, '('); i >= 0 {
		if !strings.HasSuffix(tok, ")") {
			return 0, 0, fmt.Errorf("adl: bad channel %q: missing )", tok)
		}
		name = tok[:i]
		n, err := strconv.Atoi(tok[i+1 : len(tok)-1])
		if err != nil {
			return 0, 0, fmt.Errorf("adl: bad channel size in %q", tok)
		}
		size = n
	}
	kind, ok := chanKinds[name]
	if !ok {
		return 0, 0, fmt.Errorf("adl: unknown channel kind %q", name)
	}
	if kind.Sized() && size == 0 {
		size = 1
	}
	return kind, size, nil
}

// ChannelToken renders a channel kind and size as its ADL clause.
func ChannelToken(kind blocks.ChannelKind, size int) string {
	if kind.Sized() {
		return fmt.Sprintf("%s(%d)", kind.Token(), size)
	}
	return kind.Token()
}

// RewriteConnector returns src with the named connector's send, channel,
// and receive clauses replaced to describe spec — the paper's one-token
// "plug" edit performed mechanically. The connector must be declared
// with its opening brace on the declaration line; everything outside the
// block, including comments, is preserved byte-for-byte.
func RewriteConnector(src, name string, spec blocks.ConnectorSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	// Validate first so rewrite errors carry positions, and so an absent
	// connector is reported even when the textual scan would not reach it.
	decls, err := Connectors(src)
	if err != nil {
		return "", err
	}
	found := false
	for _, d := range decls {
		if d.Name == name {
			found = true
		}
	}
	if !found {
		return "", fmt.Errorf("adl: no connector %q to rewrite", name)
	}

	lines := strings.Split(src, "\n")
	var out []string
	inBlock := false
	rewrote := false
	for _, line := range lines {
		trimmed := strings.TrimSpace(stripComment(line))
		if !inBlock {
			if isConnectorOpen(trimmed, name) {
				inBlock = true
				rewrote = true
				indent := line[:len(line)-len(strings.TrimLeft(line, " \t"))]
				out = append(out, line,
					indent+"    send    "+spec.Send.Token(),
					indent+"    channel "+ChannelToken(spec.Channel, spec.Size),
					indent+"    receive "+spec.Recv.Token())
				continue
			}
			out = append(out, line)
			continue
		}
		// Inside the target block: drop the old clauses, keep the close.
		if trimmed == "}" || strings.HasPrefix(trimmed, "}") {
			inBlock = false
			out = append(out, line)
		}
	}
	if inBlock {
		return "", fmt.Errorf("adl: connector %q block never closed", name)
	}
	if !rewrote {
		return "", fmt.Errorf("adl: connector %q must open its block on the declaration line to be rewritten", name)
	}
	return strings.Join(out, "\n"), nil
}

// ReplaceFaults returns src with its faults block (if any) removed and,
// when body is non-empty, a new `faults { body }` block inserted before
// the system's closing brace. body is the block's inner text, e.g.
// "seed 7\ndrop pipe 30".
func ReplaceFaults(src, body string) (string, error) {
	if _, err := parse(src); err != nil {
		return "", err
	}
	lines := strings.Split(src, "\n")
	var out []string
	inFaults := false
	for _, line := range lines {
		trimmed := strings.TrimSpace(stripComment(line))
		if inFaults {
			if trimmed == "}" || strings.HasPrefix(trimmed, "}") {
				inFaults = false
			}
			continue
		}
		if strings.HasPrefix(trimmed, "faults") &&
			(trimmed == "faults" || strings.HasPrefix(strings.TrimSpace(trimmed[len("faults"):]), "{")) {
			inFaults = true
			continue
		}
		out = append(out, line)
	}
	if body == "" {
		return strings.Join(out, "\n"), nil
	}
	// Insert before the last closing brace (the system block's end).
	last := -1
	for i := len(out) - 1; i >= 0; i-- {
		if strings.TrimSpace(stripComment(out[i])) == "}" {
			last = i
			break
		}
	}
	if last < 0 {
		return "", fmt.Errorf("adl: no system block to attach a faults block to")
	}
	block := []string{"    faults {"}
	for _, bl := range strings.Split(strings.TrimSpace(body), "\n") {
		block = append(block, "        "+strings.TrimSpace(bl))
	}
	block = append(block, "    }")
	out = append(out[:last], append(block, out[last:]...)...)
	return strings.Join(out, "\n"), nil
}

// isConnectorOpen matches `connector <name> {` with arbitrary spacing.
func isConnectorOpen(trimmed, name string) bool {
	rest, ok := strings.CutPrefix(trimmed, "connector")
	if !ok {
		return false
	}
	rest = strings.TrimSpace(rest)
	rest, ok = strings.CutPrefix(rest, name)
	if !ok {
		return false
	}
	return strings.TrimSpace(rest) == "{"
}

// stripComment removes // and # line comments (the ADL's two comment
// forms) so brace scanning ignores commented-out text.
func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return line
}
