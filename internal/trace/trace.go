// Package trace represents counterexample traces produced by the checker
// and renders them as readable listings and ASCII message sequence charts
// (the notation the paper uses in its Figure 4 scenarios).
package trace

import (
	"fmt"
	"strings"
)

// Event is one step of a trace. Proc is the acting process; for message
// operations Ch and Msg describe the payload, and Partner names the
// rendezvous peer (empty otherwise).
type Event struct {
	Proc    string
	Action  string // e.g. "enter!", "sig?", "guard", "assign", "assert"
	Ch      string
	Msg     string
	Partner string
	Note    string // violation text or other annotation
}

// Trace is a counterexample: a prefix of events, and for liveness
// violations a cycle that repeats forever (nil for safety violations).
type Trace struct {
	Prefix []Event
	Cycle  []Event
	// Final describes why the trace ends: the violation message.
	Final string
}

// String renders the trace as a numbered listing.
func (t *Trace) String() string {
	var b strings.Builder
	n := 1
	for _, e := range t.Prefix {
		writeEvent(&b, n, e)
		n++
	}
	if len(t.Cycle) > 0 {
		b.WriteString("  -- cycle repeats forever --\n")
		for _, e := range t.Cycle {
			writeEvent(&b, n, e)
			n++
		}
	}
	if t.Final != "" {
		fmt.Fprintf(&b, "  => %s\n", t.Final)
	}
	return b.String()
}

func writeEvent(b *strings.Builder, n int, e Event) {
	fmt.Fprintf(b, "%4d. %-16s %s", n, e.Proc, e.Action)
	if e.Msg != "" {
		fmt.Fprintf(b, " %s", e.Msg)
	}
	if e.Partner != "" {
		fmt.Fprintf(b, " -> %s", e.Partner)
	}
	if e.Note != "" {
		fmt.Fprintf(b, "   [%s]", e.Note)
	}
	b.WriteByte('\n')
}

// Len returns the total number of events.
func (t *Trace) Len() int { return len(t.Prefix) + len(t.Cycle) }

// MSC renders the trace as an ASCII message sequence chart with one
// lifeline per process, in the style of the paper's Figure 4. Only events
// involving the listed processes are drawn; a nil procs slice draws every
// process that appears in the trace.
func (t *Trace) MSC(procs []string) string {
	if procs == nil {
		seen := map[string]bool{}
		for _, e := range append(append([]Event{}, t.Prefix...), t.Cycle...) {
			for _, p := range []string{e.Proc, e.Partner} {
				if p != "" && !seen[p] {
					seen[p] = true
					procs = append(procs, p)
				}
			}
		}
	}
	col := make(map[string]int, len(procs))
	// Columns widen to fit the longest lifeline name so long process
	// names never shear the chart out of alignment.
	width := 18
	for _, p := range procs {
		if len(p)+2 > width {
			width = len(p) + 2
		}
	}
	for i, p := range procs {
		col[p] = i
	}
	var b strings.Builder
	for _, p := range procs {
		fmt.Fprintf(&b, "%-*s", width, p)
	}
	b.WriteByte('\n')
	line := func(e Event) {
		cells := make([]string, len(procs))
		for i := range cells {
			cells[i] = "|"
		}
		from, okF := col[e.Proc]
		to, okT := col[e.Partner]
		switch {
		case okF && okT && e.Partner != "":
			// Draw an arrow between the two lifelines.
			lo, hi := from, to
			dir := ">"
			if from > to {
				lo, hi = to, from
				dir = "<"
			}
			label := e.Action
			if e.Msg != "" {
				label += " " + e.Msg
			}
			for i := range cells {
				switch {
				case i == from:
					cells[i] = "*"
				case i == to:
					cells[i] = dir
				case i > lo && i < hi:
					cells[i] = "-"
				}
			}
			writeMSCRow(&b, cells, width, label)
		case okF:
			label := e.Action
			if e.Msg != "" {
				label += " " + e.Msg
			}
			if e.Note != "" {
				label += " [" + e.Note + "]"
			}
			cells[from] = "#"
			writeMSCRow(&b, cells, width, label)
		}
	}
	for _, e := range t.Prefix {
		line(e)
	}
	if len(t.Cycle) > 0 {
		b.WriteString(strings.Repeat("=", width*len(procs)))
		b.WriteString(" cycle\n")
		for _, e := range t.Cycle {
			line(e)
		}
	}
	return b.String()
}

func writeMSCRow(b *strings.Builder, cells []string, width int, label string) {
	for _, c := range cells {
		fmt.Fprintf(b, "%-*s", width, c)
	}
	b.WriteString("  ")
	b.WriteString(label)
	b.WriteByte('\n')
}
