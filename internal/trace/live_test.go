package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestLiveAppendAndEvents(t *testing.T) {
	l := NewLive(4)
	for i, a := range []string{"a", "b", "c"} {
		l.Append(Event{Proc: "p", Action: a})
		if l.Len() != i+1 {
			t.Fatalf("Len after %d appends = %d", i+1, l.Len())
		}
	}
	evs := l.Events()
	if len(evs) != 3 || evs[0].Action != "a" || evs[2].Action != "c" {
		t.Fatalf("Events = %+v", evs)
	}
	if l.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", l.Dropped())
	}
}

func TestLiveEviction(t *testing.T) {
	l := NewLive(2)
	for _, a := range []string{"a", "b", "c", "d", "e"} {
		l.Append(Event{Proc: "p", Action: a})
	}
	if l.Len() != 2 || l.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2 and 3", l.Len(), l.Dropped())
	}
	evs := l.Events()
	if evs[0].Action != "d" || evs[1].Action != "e" {
		t.Fatalf("window = %+v, want the two newest", evs)
	}
}

func TestLiveDefaultCapacity(t *testing.T) {
	l := NewLive(0)
	for i := 0; i < DefaultLiveCapacity+5; i++ {
		l.Append(Event{Proc: "p", Action: "x"})
	}
	if l.Len() != DefaultLiveCapacity || l.Dropped() != 5 {
		t.Fatalf("Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
}

func TestLiveConcurrentAppend(t *testing.T) {
	l := NewLive(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Proc: "p", Action: "x"})
			}
		}()
	}
	wg.Wait()
	if l.Len()+l.Dropped() != 800 {
		t.Fatalf("held %d + dropped %d != 800", l.Len(), l.Dropped())
	}
}

func TestLiveSnapshotMSC(t *testing.T) {
	l := NewLive(8)
	l.Append(Event{Proc: "a", Action: "sig!", Partner: "b", Msg: "m"})
	msc := l.MSC(nil)
	if !strings.Contains(msc, "sig! m") {
		t.Fatalf("MSC missing arrow label:\n%s", msc)
	}
	if got := l.Snapshot(); len(got.Prefix) != 1 || got.Cycle != nil {
		t.Fatalf("Snapshot = %+v", got)
	}
}

// --- MSC edge cases ---

func TestMSCEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if got := tr.MSC(nil); got != "\n" {
		t.Fatalf("empty MSC = %q, want header-only newline", got)
	}
	if got := tr.MSC([]string{"a", "b"}); !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Fatalf("empty MSC with procs should still print the header: %q", got)
	}
}

func TestMSCCycleOnlyTrace(t *testing.T) {
	tr := &Trace{Cycle: []Event{
		{Proc: "p", Action: "loop"},
		{Proc: "p", Action: "again"},
	}}
	msc := tr.MSC(nil)
	if !strings.Contains(msc, "cycle") {
		t.Fatalf("cycle-only MSC missing cycle marker:\n%s", msc)
	}
	for _, want := range []string{"loop", "again"} {
		if !strings.Contains(msc, want) {
			t.Fatalf("cycle-only MSC missing %q:\n%s", want, msc)
		}
	}
}

func TestMSCLongProcNames(t *testing.T) {
	long := "a-very-long-process-name-beyond-columns"
	tr := &Trace{Prefix: []Event{
		{Proc: long, Action: "sig!", Partner: "peer", Msg: "m"},
	}}
	msc := tr.MSC(nil)
	lines := strings.Split(strings.TrimRight(msc, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("MSC lines = %d:\n%s", len(lines), msc)
	}
	// Columns widen to the longest name: the long lifeline's marker and
	// the peer's arrowhead stay aligned under their headers.
	if idx := strings.Index(lines[0], "peer"); lines[1][idx] != '>' {
		t.Fatalf("arrowhead misaligned under peer column:\n%s", msc)
	}
	if lines[1][0] != '*' {
		t.Fatalf("source marker missing at long lifeline:\n%s", msc)
	}
}

func TestMSCUnknownProcSkipped(t *testing.T) {
	tr := &Trace{Prefix: []Event{
		{Proc: "known", Action: "ok"},
		{Proc: "ghost", Action: "hidden", Partner: "phantom"},
	}}
	msc := tr.MSC([]string{"known"})
	if !strings.Contains(msc, "ok") {
		t.Fatalf("listed proc's event missing:\n%s", msc)
	}
	for _, banned := range []string{"hidden", "ghost", "phantom"} {
		if strings.Contains(msc, banned) {
			t.Fatalf("event from unlisted proc leaked %q:\n%s", banned, msc)
		}
	}
}
