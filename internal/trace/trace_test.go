package trace

import (
	"strings"
	"testing"
)

func sample() *Trace {
	return &Trace{
		Prefix: []Event{
			{Proc: "Car[0]", Action: "enter!", Ch: "BlueEnter", Msg: "1", Partner: "Port[1]"},
			{Proc: "Port[1]", Action: "chDat!", Msg: "1,1", Partner: "Chan[2]"},
			{Proc: "Car[0]", Action: "guard"},
		},
		Final: "invariant bridge-safety violated",
	}
}

func TestTraceString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"1.", "2.", "3.", "Car[0]", "enter!", "-> Port[1]", "=> invariant"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace listing missing %q:\n%s", want, s)
		}
	}
}

func TestTraceStringWithCycle(t *testing.T) {
	tr := sample()
	tr.Cycle = []Event{{Proc: "Loop", Action: "spin"}}
	s := tr.String()
	if !strings.Contains(s, "cycle repeats forever") {
		t.Errorf("cycle marker missing:\n%s", s)
	}
	if !strings.Contains(s, "4. Loop") && !strings.Contains(s, "   4. Loop") {
		t.Errorf("cycle events not numbered continuously:\n%s", s)
	}
}

func TestTraceLen(t *testing.T) {
	tr := sample()
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	tr.Cycle = []Event{{}, {}}
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
}

func TestMSCAutoLifelines(t *testing.T) {
	msc := sample().MSC(nil)
	lines := strings.Split(msc, "\n")
	if len(lines) < 2 {
		t.Fatalf("MSC too short:\n%s", msc)
	}
	header := lines[0]
	for _, p := range []string{"Car[0]", "Port[1]", "Chan[2]"} {
		if !strings.Contains(header, p) {
			t.Errorf("header missing lifeline %q: %q", p, header)
		}
	}
	if !strings.Contains(msc, "enter! 1") {
		t.Errorf("MSC missing arrow label:\n%s", msc)
	}
}

func TestMSCExplicitProcs(t *testing.T) {
	msc := sample().MSC([]string{"Car[0]", "Port[1]"})
	if strings.Contains(strings.Split(msc, "\n")[0], "Chan[2]") {
		t.Errorf("explicit lifeline list ignored:\n%s", msc)
	}
}

func TestMSCArrowDirection(t *testing.T) {
	tr := &Trace{Prefix: []Event{
		{Proc: "B", Action: "reply!", Partner: "A"},
	}}
	msc := tr.MSC([]string{"A", "B"})
	// B is to the right of A, so the arrow must point left: "<".
	if !strings.Contains(msc, "<") {
		t.Errorf("leftward arrow missing:\n%s", msc)
	}
}

func TestMSCLocalEvent(t *testing.T) {
	tr := &Trace{Prefix: []Event{
		{Proc: "A", Action: "assert", Note: "assertion violated"},
	}}
	msc := tr.MSC([]string{"A"})
	if !strings.Contains(msc, "#") || !strings.Contains(msc, "assertion violated") {
		t.Errorf("local event rendering wrong:\n%s", msc)
	}
}

func TestMSCCycleMarker(t *testing.T) {
	tr := &Trace{
		Prefix: []Event{{Proc: "A", Action: "a"}},
		Cycle:  []Event{{Proc: "A", Action: "b"}},
	}
	msc := tr.MSC([]string{"A"})
	if !strings.Contains(msc, "cycle") {
		t.Errorf("cycle marker missing:\n%s", msc)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.String() != "" {
		t.Errorf("empty trace renders %q", tr.String())
	}
	if tr.Len() != 0 {
		t.Errorf("empty Len = %d", tr.Len())
	}
}
