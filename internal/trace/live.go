package trace

import "sync"

// Live is a concurrency-safe, bounded event sink for observing a
// running system: runtime event taps append protocol events from port
// and channel goroutines, and readers render the current window as a
// listing or an ASCII MSC at any time — the same Figure 4 orderings the
// checker shows for the models, but observed on the real execution.
//
// When the buffer is full the oldest events are discarded, so the view
// is always the most recent window; Dropped reports how many fell off.
type Live struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len == capacity once full
	head    int     // index of the oldest event
	n       int     // events currently held
	dropped int
}

// DefaultLiveCapacity is the window size when NewLive is given a
// non-positive capacity.
const DefaultLiveCapacity = 1024

// NewLive creates a live event window holding up to capacity events.
func NewLive(capacity int) *Live {
	if capacity <= 0 {
		capacity = DefaultLiveCapacity
	}
	return &Live{buf: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when full. Safe for
// concurrent use.
func (l *Live) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == len(l.buf) {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
		return
	}
	l.buf[(l.head+l.n)%len(l.buf)] = e
	l.n++
}

// Len returns the number of events currently held.
func (l *Live) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped returns how many events have been evicted so far.
func (l *Live) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the current window, oldest first.
func (l *Live) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.head+i)%len(l.buf)]
	}
	return out
}

// Snapshot freezes the current window as a Trace, so every trace
// renderer (listing, MSC) applies to the live system.
func (l *Live) Snapshot() *Trace {
	return &Trace{Prefix: l.Events()}
}

// MSC renders the current window as an ASCII message sequence chart;
// see Trace.MSC for the procs parameter.
func (l *Live) MSC(procs []string) string {
	return l.Snapshot().MSC(procs)
}
