// Package ltl implements linear temporal logic: parsing, negation normal
// form, translation to Büchi automata via the GPVW on-the-fly tableau
// construction with degeneralization, and direct evaluation over
// ultimately-periodic words (used to cross-validate the translation).
//
// The checker package builds the product of a system with the automaton
// for the negated formula and searches for acceptance cycles, exactly as
// Spin does with never claims.
package ltl

import (
	"fmt"
	"strings"
)

// Op is a formula node operator.
type Op int

// Formula operators. Implication and equivalence are desugared by the
// parser; Eventually and Always are desugared to Until/Release.
const (
	OpTrue Op = iota + 1
	OpFalse
	OpAtom
	OpNot
	OpAnd
	OpOr
	OpNext
	OpUntil
	OpRelease
)

// Formula is an LTL formula node. Formulas are immutable; construct them
// with the helper constructors to get hash-consed, normalized nodes.
type Formula struct {
	Op   Op
	Atom string
	L, R *Formula
	str  string // canonical form, used for identity
}

// Key returns the canonical string form of the formula.
func (f *Formula) Key() string { return f.str }

// String renders the formula using Spin-style syntax.
func (f *Formula) String() string { return f.str }

func mk(op Op, atom string, l, r *Formula) *Formula {
	f := &Formula{Op: op, Atom: atom, L: l, R: r}
	switch op {
	case OpTrue:
		f.str = "true"
	case OpFalse:
		f.str = "false"
	case OpAtom:
		f.str = atom
	case OpNot:
		f.str = "!(" + l.str + ")"
	case OpAnd:
		f.str = "(" + l.str + " && " + r.str + ")"
	case OpOr:
		f.str = "(" + l.str + " || " + r.str + ")"
	case OpNext:
		f.str = "X(" + l.str + ")"
	case OpUntil:
		f.str = "(" + l.str + " U " + r.str + ")"
	case OpRelease:
		f.str = "(" + l.str + " V " + r.str + ")"
	}
	return f
}

// True is the constant true formula.
func True() *Formula { return mk(OpTrue, "", nil, nil) }

// False is the constant false formula.
func False() *Formula { return mk(OpFalse, "", nil, nil) }

// Atom references a named atomic proposition.
func Atom(name string) *Formula { return mk(OpAtom, name, nil, nil) }

// Not negates a formula.
func Not(f *Formula) *Formula { return mk(OpNot, "", f, nil) }

// And conjoins two formulas.
func And(a, b *Formula) *Formula { return mk(OpAnd, "", a, b) }

// Or disjoins two formulas.
func Or(a, b *Formula) *Formula { return mk(OpOr, "", a, b) }

// Next is the X operator.
func Next(f *Formula) *Formula { return mk(OpNext, "", f, nil) }

// Until is the (strong) U operator.
func Until(a, b *Formula) *Formula { return mk(OpUntil, "", a, b) }

// Release is the V (R) operator, the dual of Until.
func Release(a, b *Formula) *Formula { return mk(OpRelease, "", a, b) }

// Eventually is <>f, desugared to true U f.
func Eventually(f *Formula) *Formula { return Until(True(), f) }

// Always is []f, desugared to false V f.
func Always(f *Formula) *Formula { return Release(False(), f) }

// Implies desugars a -> b to !a || b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// Atoms returns the distinct atomic proposition names in the formula, in
// first-appearance order.
func (f *Formula) Atoms() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(*Formula)
	walk = func(g *Formula) {
		if g == nil {
			return
		}
		if g.Op == OpAtom && !seen[g.Atom] {
			seen[g.Atom] = true
			out = append(out, g.Atom)
		}
		walk(g.L)
		walk(g.R)
	}
	walk(f)
	return out
}

// NNF rewrites the formula into negation normal form: negations are pushed
// inward until they apply only to atoms.
func NNF(f *Formula) *Formula {
	switch f.Op {
	case OpTrue, OpFalse, OpAtom:
		return f
	case OpAnd:
		return And(NNF(f.L), NNF(f.R))
	case OpOr:
		return Or(NNF(f.L), NNF(f.R))
	case OpNext:
		return Next(NNF(f.L))
	case OpUntil:
		return Until(NNF(f.L), NNF(f.R))
	case OpRelease:
		return Release(NNF(f.L), NNF(f.R))
	case OpNot:
		g := f.L
		switch g.Op {
		case OpTrue:
			return False()
		case OpFalse:
			return True()
		case OpAtom:
			return f // negation of an atom is already NNF
		case OpNot:
			return NNF(g.L)
		case OpAnd:
			return Or(NNF(Not(g.L)), NNF(Not(g.R)))
		case OpOr:
			return And(NNF(Not(g.L)), NNF(Not(g.R)))
		case OpNext:
			return Next(NNF(Not(g.L)))
		case OpUntil:
			return Release(NNF(Not(g.L)), NNF(Not(g.R)))
		case OpRelease:
			return Until(NNF(Not(g.L)), NNF(Not(g.R)))
		}
	}
	return f
}

// --- Parser ---
//
// Grammar (Spin-compatible):
//   f := g | g "->" f | g "<->" f
//   g := h { ("&&" | "||") h }          (&& binds tighter than ||)
//   h := "!" h | "[]" h | "<>" h | "X" h
//      | i [ ("U" | "V" | "R") h ]
//   i := "true" | "false" | ident | "(" f ")"

type ltlParser struct {
	toks []string
	pos  int
}

// ParseError reports a malformed LTL formula.
type ParseError struct {
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return "ltl: " + e.Msg }

// Parse parses a Spin-style LTL formula. Atomic propositions are bare
// identifiers; the caller maps them to state predicates.
func Parse(src string) (*Formula, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &ltlParser{toks: toks}
	f, err := p.implies()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, &ParseError{Msg: fmt.Sprintf("unexpected %q after formula", p.toks[p.pos])}
	}
	return f, nil
}

func tokenize(src string) ([]string, error) {
	var out []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.HasPrefix(src[i:], "[]"), strings.HasPrefix(src[i:], "<>"),
			strings.HasPrefix(src[i:], "&&"), strings.HasPrefix(src[i:], "||"),
			strings.HasPrefix(src[i:], "->"):
			out = append(out, src[i:i+2])
			i += 2
		case strings.HasPrefix(src[i:], "<->"):
			out = append(out, "<->")
			i += 3
		case c == '!' || c == '(' || c == ')':
			out = append(out, string(c))
			i++
		case isLtlIdentStart(c):
			j := i
			for j < len(src) && isLtlIdentCont(src[j]) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		default:
			return nil, &ParseError{Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	return out, nil
}

func isLtlIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isLtlIdentCont(c byte) bool {
	return isLtlIdentStart(c) || c >= '0' && c <= '9'
}

func (p *ltlParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *ltlParser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

func (p *ltlParser) implies() (*Formula, error) {
	l, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		r, err := p.implies() // right-associative
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	if p.accept("<->") {
		r, err := p.implies()
		if err != nil {
			return nil, err
		}
		return And(Implies(l, r), Implies(r, l)), nil
	}
	return l, nil
}

func (p *ltlParser) orExpr() (*Formula, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *ltlParser) andExpr() (*Formula, error) {
	l, err := p.untilExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.untilExpr()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *ltlParser) untilExpr() (*Formula, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("U"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = Until(l, r)
		case p.accept("V"), p.accept("R"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = Release(l, r)
		default:
			return l, nil
		}
	}
}

func (p *ltlParser) unaryExpr() (*Formula, error) {
	switch {
	case p.accept("!"):
		f, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case p.accept("[]"):
		f, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Always(f), nil
	case p.accept("<>"):
		f, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Eventually(f), nil
	case p.accept("X"):
		f, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Next(f), nil
	case p.accept("("):
		f, err := p.implies()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, &ParseError{Msg: "missing )"}
		}
		return f, nil
	case p.accept("true"):
		return True(), nil
	case p.accept("false"):
		return False(), nil
	default:
		tok := p.peek()
		if tok == "" {
			return nil, &ParseError{Msg: "unexpected end of formula"}
		}
		if !isLtlIdentStart(tok[0]) || tok == "U" || tok == "V" || tok == "R" || tok == "X" {
			return nil, &ParseError{Msg: fmt.Sprintf("unexpected %q", tok)}
		}
		p.pos++
		return Atom(tok), nil
	}
}
