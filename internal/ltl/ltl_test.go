package ltl

import (
	"math/rand"
	"strings"
	"testing"
)

func mustParseLTL(t *testing.T, src string) *Formula {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func TestParseBasics(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"p", "p"},
		{"!p", "!(p)"},
		{"p && q", "(p && q)"},
		{"p || q", "(p || q)"},
		{"p -> q", "(!(p) || q)"},
		{"[] p", "(false V p)"},
		{"<> p", "(true U p)"},
		{"X p", "X(p)"},
		{"p U q", "(p U q)"},
		{"p V q", "(p V q)"},
		{"p R q", "(p V q)"},
		{"[] (p -> <> q)", "(false V (!(p) || (true U q)))"},
		{"true && false", "(true && false)"},
	}
	for _, tt := range tests {
		f := mustParseLTL(t, tt.src)
		if f.String() != tt.want {
			t.Errorf("Parse(%q) = %s, want %s", tt.src, f, tt.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// && binds tighter than ||; -> is weakest and right-associative.
	f := mustParseLTL(t, "a || b && c")
	if f.Op != OpOr {
		t.Errorf("a || b && c parsed as %s", f)
	}
	g := mustParseLTL(t, "a -> b -> c")
	// a -> (b -> c) = !a || (!b || c)
	if !strings.Contains(g.String(), "!(b)") {
		t.Errorf("-> not right-associative: %s", g)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(p", "p &&", "[]", "p q", "&& p", "p U"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestNNF(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"!(p && q)", "(!(p) || !(q))"},
		{"!(p || q)", "(!(p) && !(q))"},
		{"!!p", "p"},
		{"!X p", "X(!(p))"},
		{"!(p U q)", "(!(p) V !(q))"},
		{"!(p V q)", "(!(p) U !(q))"},
		{"![] p", "(true U !(p))"},
		{"!<> p", "(false V !(p))"},
		{"!true", "false"},
	}
	for _, tt := range tests {
		f := NNF(mustParseLTL(t, tt.src))
		if f.String() != tt.want {
			t.Errorf("NNF(%q) = %s, want %s", tt.src, f, tt.want)
		}
	}
}

func TestAtoms(t *testing.T) {
	f := mustParseLTL(t, "[] (p -> <> (q && p))")
	atoms := f.Atoms()
	if len(atoms) != 2 || atoms[0] != "p" || atoms[1] != "q" {
		t.Errorf("Atoms = %v", atoms)
	}
}

// wordOf builds a Word over the given atoms from rows of valuations.
func wordOf(atoms []string, prefix, cycle [][]bool) *Word {
	return &Word{Atoms: atoms, Prefix: prefix, Cycle: cycle}
}

func TestEvalWordBasics(t *testing.T) {
	atoms := []string{"p", "q"}
	// Word: p at position 0 only, q at position 2 onwards (cycle).
	w := wordOf(atoms,
		[][]bool{{true, false}, {false, false}},
		[][]bool{{false, true}},
	)
	tests := []struct {
		src  string
		want bool
	}{
		{"p", true},
		{"q", false},
		{"X q", false},
		{"X X q", true},
		{"<> q", true},
		{"[] q", false},
		{"<> [] q", true},
		{"[] <> q", true},
		{"p U q", false}, // p fails at position 1 before q holds
		{"(p || q) U q", false},
		{"true U q", true},
		{"[] (q -> X q)", true},
		{"<> p", true},
		{"[] <> p", false},
		{"<> [] !p", true},
	}
	for _, tt := range tests {
		f := mustParseLTL(t, tt.src)
		if got := EvalWord(f, w); got != tt.want {
			t.Errorf("EvalWord(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestTranslateSmokeAlwaysP(t *testing.T) {
	a, err := Translate(mustParseLTL(t, "[] p"))
	if err != nil {
		t.Fatal(err)
	}
	holds := wordOf([]string{"p"}, nil, [][]bool{{true}})
	fails := wordOf([]string{"p"}, [][]bool{{true}}, [][]bool{{false}})
	if !a.Accepts(holds) {
		t.Error("automaton for []p rejects p^omega")
	}
	if a.Accepts(fails) {
		t.Error("automaton for []p accepts a word where p eventually fails")
	}
}

func TestTranslateSmokeEventuallyP(t *testing.T) {
	a, err := Translate(mustParseLTL(t, "<> p"))
	if err != nil {
		t.Fatal(err)
	}
	holds := wordOf([]string{"p"}, [][]bool{{false}, {false}}, [][]bool{{true}})
	fails := wordOf([]string{"p"}, nil, [][]bool{{false}})
	if !a.Accepts(holds) {
		t.Error("automaton for <>p rejects a word with p at position 2")
	}
	if a.Accepts(fails) {
		t.Error("automaton for <>p accepts (!p)^omega")
	}
}

func TestTranslateResponse(t *testing.T) {
	a, err := Translate(mustParseLTL(t, "[] (p -> <> q)"))
	if err != nil {
		t.Fatal(err)
	}
	// p then q, forever alternating: satisfies response.
	good := wordOf([]string{"p", "q"}, nil, [][]bool{{true, false}, {false, true}})
	// p once, q never.
	bad := wordOf([]string{"p", "q"}, [][]bool{{true, false}}, [][]bool{{false, false}})
	if !a.Accepts(good) {
		t.Error("response automaton rejects alternating p/q")
	}
	if a.Accepts(bad) {
		t.Error("response automaton accepts unanswered p")
	}
}

// randomFormula generates a random LTL formula over the atoms.
func randomFormula(r *rand.Rand, atoms []string, depth int) *Formula {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return Atom(atoms[r.Intn(len(atoms))])
		}
	}
	switch r.Intn(7) {
	case 0:
		return Not(randomFormula(r, atoms, depth-1))
	case 1:
		return And(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 2:
		return Or(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 3:
		return Next(randomFormula(r, atoms, depth-1))
	case 4:
		return Until(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 5:
		return Release(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	default:
		return Eventually(randomFormula(r, atoms, depth-1))
	}
}

func randomWord(r *rand.Rand, atoms []string) *Word {
	row := func() []bool {
		out := make([]bool, len(atoms))
		for i := range out {
			out[i] = r.Intn(2) == 0
		}
		return out
	}
	p := r.Intn(4)
	c := 1 + r.Intn(4)
	w := &Word{Atoms: atoms}
	for i := 0; i < p; i++ {
		w.Prefix = append(w.Prefix, row())
	}
	for i := 0; i < c; i++ {
		w.Cycle = append(w.Cycle, row())
	}
	return w
}

// TestTranslationMatchesSemantics is the central correctness property of
// the LTL pipeline: for random formulas and random lasso words, the GPVW
// automaton accepts exactly the words that satisfy the formula.
func TestTranslationMatchesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	atoms := []string{"p", "q"}
	for i := 0; i < 400; i++ {
		f := randomFormula(r, atoms, 3)
		a, err := Translate(f)
		if err != nil {
			t.Fatalf("Translate(%s): %v", f, err)
		}
		for j := 0; j < 8; j++ {
			w := randomWord(r, atoms)
			want := EvalWord(f, w)
			got := a.Accepts(w)
			if got != want {
				t.Fatalf("formula %s, word prefix=%v cycle=%v: automaton=%v semantics=%v",
					f, w.Prefix, w.Cycle, got, want)
			}
		}
	}
}

// TestNNFPreservesSemantics checks NNF against direct evaluation.
func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	atoms := []string{"p", "q", "r"}
	for i := 0; i < 300; i++ {
		f := randomFormula(r, atoms, 4)
		g := NNF(f)
		for j := 0; j < 5; j++ {
			w := randomWord(r, atoms)
			if EvalWord(f, w) != EvalWord(g, w) {
				t.Fatalf("NNF changed semantics: %s vs %s", f, g)
			}
		}
	}
}

// TestNegationComplement: a word satisfies f xor it satisfies !f, and the
// automata for f and !f never both accept or both reject.
func TestNegationComplement(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	atoms := []string{"p", "q"}
	for i := 0; i < 150; i++ {
		f := randomFormula(r, atoms, 3)
		af, err := Translate(f)
		if err != nil {
			t.Fatal(err)
		}
		an, err := Translate(Not(f))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			w := randomWord(r, atoms)
			pos := af.Accepts(w)
			neg := an.Accepts(w)
			if pos == neg {
				t.Fatalf("formula %s: automaton(f)=%v automaton(!f)=%v for the same word", f, pos, neg)
			}
		}
	}
}
