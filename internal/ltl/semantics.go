package ltl

// Word is an ultimately periodic infinite word: Prefix followed by Cycle
// repeated forever. Each letter is a valuation of Atoms.
type Word struct {
	Atoms  []string
	Prefix [][]bool
	Cycle  [][]bool // must be non-empty
}

func (w *Word) length() int { return len(w.Prefix) + len(w.Cycle) }

// letter returns the valuation at unrolled position i (0 <= i < length).
func (w *Word) letter(i int) []bool {
	if i < len(w.Prefix) {
		return w.Prefix[i]
	}
	return w.Cycle[i-len(w.Prefix)]
}

// succ returns the successor position, wrapping the cycle.
func (w *Word) succ(i int) int {
	if i == w.length()-1 {
		return len(w.Prefix)
	}
	return i + 1
}

// EvalWord decides w ⊨ f directly from LTL semantics, computing truth
// values at every position of the lasso with fixpoint iteration for the
// Until (least) and Release (greatest) operators. It is the reference
// implementation used to validate the Büchi translation.
func EvalWord(f *Formula, w *Word) bool {
	if len(w.Cycle) == 0 {
		panic("ltl: word cycle must be non-empty")
	}
	g := NNF(f)
	n := w.length()
	atomIdx := make(map[string]int, len(w.Atoms))
	for i, a := range w.Atoms {
		atomIdx[a] = i
	}
	memo := map[string][]bool{}

	var eval func(*Formula) []bool
	eval = func(h *Formula) []bool {
		if v, ok := memo[h.Key()]; ok {
			return v
		}
		out := make([]bool, n)
		switch h.Op {
		case OpTrue:
			for i := range out {
				out[i] = true
			}
		case OpFalse:
			// all false
		case OpAtom:
			if ai, ok := atomIdx[h.Atom]; ok {
				for i := 0; i < n; i++ {
					out[i] = w.letter(i)[ai]
				}
			}
		case OpNot:
			sub := eval(h.L)
			for i := range out {
				out[i] = !sub[i]
			}
		case OpAnd:
			a, b := eval(h.L), eval(h.R)
			for i := range out {
				out[i] = a[i] && b[i]
			}
		case OpOr:
			a, b := eval(h.L), eval(h.R)
			for i := range out {
				out[i] = a[i] || b[i]
			}
		case OpNext:
			sub := eval(h.L)
			for i := 0; i < n; i++ {
				out[i] = sub[w.succ(i)]
			}
		case OpUntil:
			a, b := eval(h.L), eval(h.R)
			// Least fixpoint: start all-false, iterate to stability.
			for it := 0; it <= n; it++ {
				changed := false
				for i := n - 1; i >= 0; i-- {
					v := b[i] || (a[i] && out[w.succ(i)])
					if v != out[i] {
						out[i] = v
						changed = true
					}
				}
				if !changed {
					break
				}
			}
		case OpRelease:
			a, b := eval(h.L), eval(h.R)
			// Greatest fixpoint: start all-true, iterate to stability.
			for i := range out {
				out[i] = true
			}
			for it := 0; it <= n; it++ {
				changed := false
				for i := n - 1; i >= 0; i-- {
					v := b[i] && (a[i] || out[w.succ(i)])
					if v != out[i] {
						out[i] = v
						changed = true
					}
				}
				if !changed {
					break
				}
			}
		}
		memo[h.Key()] = out
		return out
	}
	return eval(g)[0]
}

// Accepts reports whether the automaton accepts the lasso word, by
// searching for a reachable accepting node on a cycle of the
// (state, position) product graph.
func (a *Automaton) Accepts(w *Word) bool {
	if len(w.Cycle) == 0 {
		panic("ltl: word cycle must be non-empty")
	}
	valAt := func(i int) func(int) bool {
		letter := w.letter(i)
		atomIdx := make(map[string]int, len(w.Atoms))
		for j, at := range w.Atoms {
			atomIdx[at] = j
		}
		return func(ai int) bool {
			name := a.Atoms[ai]
			j, ok := atomIdx[name]
			return ok && letter[j]
		}
	}

	type node struct{ q, i int }
	succ := func(v node) []node {
		var out []node
		j := w.succ(v.i)
		val := valAt(j)
		for _, t := range a.States[v.q].Trans {
			if t.Sat(val) {
				out = append(out, node{t.Dst, j})
			}
		}
		return out
	}

	// Reachable set from initial transitions.
	var stack []node
	reach := map[node]bool{}
	val0 := valAt(0)
	for _, t := range a.InitTrans {
		if t.Sat(val0) {
			v := node{t.Dst, 0}
			if !reach[v] {
				reach[v] = true
				stack = append(stack, v)
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range succ(v) {
			if !reach[u] {
				reach[u] = true
				stack = append(stack, u)
			}
		}
	}

	// An accepting node on a cycle: v reaches itself via >= 1 edge.
	for v := range reach {
		if !a.States[v.q].Accepting {
			continue
		}
		seen := map[node]bool{}
		frontier := succ(v)
		var st2 []node
		for _, u := range frontier {
			if u == v {
				return true
			}
			if !seen[u] {
				seen[u] = true
				st2 = append(st2, u)
			}
		}
		for len(st2) > 0 {
			u := st2[len(st2)-1]
			st2 = st2[:len(st2)-1]
			for _, x := range succ(u) {
				if x == v {
					return true
				}
				if !seen[x] {
					seen[x] = true
					st2 = append(st2, x)
				}
			}
		}
	}
	return false
}
