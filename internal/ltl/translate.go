package ltl

import (
	"fmt"
	"sort"
)

// Trans is one automaton transition. It is taken on a system state in
// which every atom in Pos holds and no atom in Neg holds (indexes into
// Automaton.Atoms).
type Trans struct {
	Dst int
	Pos []int
	Neg []int
}

// AState is one Büchi automaton state.
type AState struct {
	Accepting bool
	Trans     []Trans
}

// Automaton is a (nondeterministic) Büchi automaton over sets of atomic
// propositions. InitTrans are the transitions out of the implicit initial
// state; acceptance is on states.
type Automaton struct {
	Atoms     []string
	States    []AState
	InitTrans []Trans
}

// maxTableauNodes bounds the GPVW expansion as a safety net against
// pathological formulas.
const maxTableauNodes = 1 << 16

// gNode is a node of the GPVW tableau under construction.
type gNode struct {
	id       int
	incoming map[int]bool // -1 denotes the virtual initial state
	new      map[string]*Formula
	old      map[string]*Formula
	next     map[string]*Formula
}

func copySet(m map[string]*Formula) map[string]*Formula {
	out := make(map[string]*Formula, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sameSet(a, b map[string]*Formula) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

type tableau struct {
	nodes []*gNode
	count int
}

// Translate builds a Büchi automaton accepting exactly the infinite words
// satisfying f, using the GPVW tableau construction followed by
// degeneralization of the generalized acceptance condition.
func Translate(f *Formula) (*Automaton, error) {
	g := NNF(f)
	tb := &tableau{}
	start := &gNode{
		id:       tb.fresh(),
		incoming: map[int]bool{-1: true},
		new:      map[string]*Formula{g.Key(): g},
		old:      map[string]*Formula{},
		next:     map[string]*Formula{},
	}
	if err := tb.expand(start); err != nil {
		return nil, err
	}

	atoms := g.Atoms()
	atomIdx := make(map[string]int, len(atoms))
	for i, a := range atoms {
		atomIdx[a] = i
	}

	// Generalized acceptance: one set per Until subformula.
	untils := untilSubformulas(g)
	inF := func(n *gNode, u *Formula) bool {
		if _, holds := n.old[u.Key()]; !holds {
			return true
		}
		_, psiHolds := n.old[u.R.Key()]
		return psiHolds
	}

	// Map tableau node ids to dense indexes.
	idx := make(map[int]int, len(tb.nodes))
	for i, n := range tb.nodes {
		idx[n.id] = i
	}

	// Label of a node: the condition on transitions entering it.
	label := func(n *gNode) (pos, neg []int) {
		for _, of := range n.old {
			switch {
			case of.Op == OpAtom:
				pos = append(pos, atomIdx[of.Atom])
			case of.Op == OpNot && of.L.Op == OpAtom:
				neg = append(neg, atomIdx[of.L.Atom])
			}
		}
		sort.Ints(pos)
		sort.Ints(neg)
		return pos, neg
	}

	k := len(untils)
	// Degeneralized states: (node, counter) with counter in 0..k.
	// counter == k is accepting; from there the counter restarts.
	type dkey struct{ node, counter int }
	dIdx := map[dkey]int{}
	var dStates []dkey
	stateOf := func(nd, counter int) int {
		key := dkey{nd, counter}
		if i, ok := dIdx[key]; ok {
			return i
		}
		dIdx[key] = len(dStates)
		dStates = append(dStates, key)
		return len(dStates) - 1
	}
	advance := func(c int, target *gNode) int {
		if c == k {
			c = 0
		}
		for c < k && inF(target, untils[c]) {
			c++
		}
		return c
	}

	// Build transitions. Every tableau edge p->q (p in incoming(q)) becomes
	// (p,c) -> (q, advance(c,q)) for every counter value c in use; we build
	// lazily from reachable degeneralized states.
	out := &Automaton{Atoms: atoms}

	// successors of tableau node p: all q with p in incoming(q).
	succOf := make(map[int][]*gNode)
	var initSucc []*gNode
	for _, q := range tb.nodes {
		for p := range q.incoming {
			if p == -1 {
				initSucc = append(initSucc, q)
			} else {
				succOf[p] = append(succOf[p], q)
			}
		}
	}

	var work []int
	for _, q := range initSucc {
		c := advance(0, q)
		si := stateOf(q.id, c)
		pos, neg := label(q)
		out.InitTrans = append(out.InitTrans, Trans{Dst: si, Pos: pos, Neg: neg})
	}
	for i := 0; i < len(dStates); i++ {
		work = append(work, i)
	}
	for len(work) > 0 {
		si := work[0]
		work = work[1:]
		for len(out.States) <= si {
			out.States = append(out.States, AState{})
		}
		key := dStates[si]
		nd := tb.nodes[idx[key.node]]
		for _, q := range succOf[nd.id] {
			before := len(dStates)
			c := advance(key.counter, q)
			ti := stateOf(q.id, c)
			if len(dStates) > before {
				work = append(work, ti)
			}
			pos, neg := label(q)
			out.States[si].Trans = append(out.States[si].Trans, Trans{Dst: ti, Pos: pos, Neg: neg})
		}
	}
	for len(out.States) < len(dStates) {
		out.States = append(out.States, AState{})
	}
	for i, key := range dStates {
		out.States[i].Accepting = key.counter == k
	}
	return out, nil
}

func (tb *tableau) fresh() int {
	tb.count++
	return tb.count
}

// expand is the GPVW node expansion.
func (tb *tableau) expand(n *gNode) error {
	if tb.count > maxTableauNodes {
		return fmt.Errorf("ltl: formula too large (tableau exceeded %d nodes)", maxTableauNodes)
	}
	if len(n.new) == 0 {
		for _, nd := range tb.nodes {
			if sameSet(nd.old, n.old) && sameSet(nd.next, n.next) {
				for in := range n.incoming {
					nd.incoming[in] = true
				}
				return nil
			}
		}
		tb.nodes = append(tb.nodes, n)
		succ := &gNode{
			id:       tb.fresh(),
			incoming: map[int]bool{n.id: true},
			new:      copySet(n.next),
			old:      map[string]*Formula{},
			next:     map[string]*Formula{},
		}
		return tb.expand(succ)
	}

	// Pick any formula from New.
	var key string
	var eta *Formula
	for k, v := range n.new {
		key, eta = k, v
		break
	}
	delete(n.new, key)

	switch eta.Op {
	case OpFalse:
		return nil // contradiction: discard node
	case OpTrue:
		n.old[key] = eta
		return tb.expand(n)
	case OpAtom, OpNot:
		if contradicts(n.old, eta) {
			return nil
		}
		n.old[key] = eta
		return tb.expand(n)
	case OpAnd:
		n.old[key] = eta
		addNew(n, eta.L)
		addNew(n, eta.R)
		return tb.expand(n)
	case OpNext:
		n.old[key] = eta
		n.next[eta.L.Key()] = eta.L
		return tb.expand(n)
	case OpOr:
		n1 := splitNode(tb, n)
		addNew(n1, eta.L)
		n1.old[key] = eta
		n2 := n
		addNew(n2, eta.R)
		n2.old[key] = eta
		if err := tb.expand(n1); err != nil {
			return err
		}
		return tb.expand(n2)
	case OpUntil:
		// mu U psi = psi | (mu & X(mu U psi))
		n1 := splitNode(tb, n)
		addNew(n1, eta.L)
		n1.next[key] = eta
		n1.old[key] = eta
		n2 := n
		addNew(n2, eta.R)
		n2.old[key] = eta
		if err := tb.expand(n1); err != nil {
			return err
		}
		return tb.expand(n2)
	case OpRelease:
		// mu V psi = (psi & mu) | (psi & X(mu V psi))
		n1 := splitNode(tb, n)
		addNew(n1, eta.R)
		n1.next[key] = eta
		n1.old[key] = eta
		n2 := n
		addNew(n2, eta.L)
		addNew(n2, eta.R)
		n2.old[key] = eta
		if err := tb.expand(n1); err != nil {
			return err
		}
		return tb.expand(n2)
	default:
		return fmt.Errorf("ltl: unexpected operator in NNF formula %s", eta)
	}
}

// addNew queues a subformula for processing unless it is already in Old.
func addNew(n *gNode, f *Formula) {
	if _, done := n.old[f.Key()]; done {
		return
	}
	n.new[f.Key()] = f
}

// splitNode clones the node for the first branch of a disjunctive rule.
// The incoming set is copied: stored nodes mutate their incoming sets when
// later nodes merge into them, so sharing would corrupt the sibling.
func splitNode(tb *tableau, n *gNode) *gNode {
	in := make(map[int]bool, len(n.incoming))
	for k, v := range n.incoming {
		in[k] = v
	}
	return &gNode{
		id:       tb.fresh(),
		incoming: in,
		new:      copySet(n.new),
		old:      copySet(n.old),
		next:     copySet(n.next),
	}
}

// contradicts reports whether adding literal eta to old creates an
// immediate contradiction.
func contradicts(old map[string]*Formula, eta *Formula) bool {
	if eta.Op == OpAtom {
		_, clash := old[Not(eta).Key()]
		return clash
	}
	// eta is !atom
	_, clash := old[eta.L.Key()]
	return clash
}

// untilSubformulas collects the distinct Until subformulas of an NNF
// formula, in deterministic order.
func untilSubformulas(f *Formula) []*Formula {
	var out []*Formula
	seen := map[string]bool{}
	var walk func(*Formula)
	walk = func(g *Formula) {
		if g == nil {
			return
		}
		if g.Op == OpUntil && !seen[g.Key()] {
			seen[g.Key()] = true
			out = append(out, g)
		}
		walk(g.L)
		walk(g.R)
	}
	walk(f)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Sat reports whether a transition's condition holds for a valuation.
func (t Trans) Sat(val func(atom int) bool) bool {
	for _, a := range t.Pos {
		if !val(a) {
			return false
		}
	}
	for _, a := range t.Neg {
		if val(a) {
			return false
		}
	}
	return true
}
