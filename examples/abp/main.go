// ABP: the alternating bit protocol over deliberately lossy connectors.
// Shows the whole Plug-and-Play story on a classic protocol: a naive
// transfer over a dropping-buffer channel provably loses messages; the
// same connectors carrying the ABP retransmission discipline provably
// deliver everything, in order, exactly once.
package main

import (
	"fmt"
	"os"

	"pnp/internal/abp"
	"pnp/internal/checker"
	"pnp/internal/swp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "abp: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("=== Alternating bit protocol over dropping channels ===")
	fmt.Println()
	fmt.Println("Both the data path and the ack path use the library's dropping")
	fmt.Println("buffer: a message that arrives while the buffer is full is gone.")
	fmt.Println()

	for _, payloads := range []int{1, 2, 3} {
		res, err := abp.Verify(abp.Config{Payloads: payloads}, nil, checker.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("payloads=%d\n", payloads)
		fmt.Printf("  in-order, exactly-once (safety): %s\n", res.Safety.Summary())
		fmt.Printf("  completion stays reachable (AG EF): %s\n", res.Delivery.Summary())
		if !res.Safety.OK || !res.Delivery.OK {
			return fmt.Errorf("protocol verification failed")
		}
	}

	fmt.Println()
	fmt.Println("Go-back-N sliding window (window = 2 frames in flight):")
	sw, err := swp.Verify(swp.Config{Frames: 3, Window: 2}, nil, checker.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  in-order, exactly-once (safety): %s\n", sw.Safety.Summary())
	fmt.Printf("  completion stays reachable (AG EF): %s\n", sw.Delivery.Summary())
	if !sw.Safety.OK || !sw.Delivery.OK {
		return fmt.Errorf("sliding window verification failed")
	}

	fmt.Println()
	fmt.Println("Contrast: without the protocol, the same lossy connectors fail the")
	fmt.Println("delivery goal (see TestNaiveTransferOverLossyChannelFails). The")
	fmt.Println("connector blocks did not change — the protocol in the components")
	fmt.Println("turned an unreliable channel into a reliable transfer.")
	return nil
}
