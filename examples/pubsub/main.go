// Pub/sub: a market-data fan-out built on the publish/subscribe connector
// (the paper's Section 6 extension). Publishers push tagged ticks into an
// event pool; subscribers see only the topics they subscribed to, each at
// their own pace, through the same standard receive discipline.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"pnp"
)

// Topic tags.
const (
	topicGold = iota + 1
	topicOil
	topicWheat
)

var topicNames = map[int]string{topicGold: "gold", topicOil: "oil", topicWheat: "wheat"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ps, err := pnp.NewPubSub("market", 16)
	if err != nil {
		return err
	}
	feed, err := ps.NewPublisher()
	if err != nil {
		return err
	}
	metalsDesk, err := ps.NewSubscriber(topicGold)
	if err != nil {
		return err
	}
	energyDesk, err := ps.NewSubscriber(topicOil)
	if err != nil {
		return err
	}
	riskDesk, err := ps.NewSubscriber() // everything
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ps.Start(ctx); err != nil {
		return err
	}
	defer ps.Stop()

	ticks := []struct {
		topic int
		price int
	}{
		{topicGold, 2375}, {topicOil, 81}, {topicWheat, 598},
		{topicGold, 2381}, {topicOil, 79}, {topicGold, 2379},
	}
	for _, tk := range ticks {
		if err := feed.Publish(ctx, pnp.Message{Data: tk.price, Tag: tk.topic}); err != nil {
			return err
		}
	}

	var mu sync.Mutex
	report := func(desk string, m pnp.Message) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("%-8s %-6s %d\n", desk, topicNames[m.Tag], m.Data)
	}

	var wg sync.WaitGroup
	drain := func(desk string, sub interface {
		TryNext(context.Context) (pnp.Message, bool, error)
	}) {
		defer wg.Done()
		for {
			m, ok, err := sub.TryNext(ctx)
			if err != nil || !ok {
				return
			}
			report(desk, m)
		}
	}
	fmt.Printf("%-8s %-6s %s\n", "desk", "topic", "price")
	wg.Add(3)
	go drain("metals", metalsDesk)
	go drain("energy", energyDesk)
	go drain("risk", riskDesk)
	wg.Wait()

	fmt.Println("\nmetals saw only gold, energy only oil, risk saw everything —")
	fmt.Println("the event pool routed by subscription, no component knew the others")
	return nil
}
