// RPC: a key-value store served over the RPC connector, which is composed
// from two ordinary message-passing connectors (request and reply) with
// selective receives matching replies to calls — the paper's point that
// the standard interfaces support RPC without new primitives.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"pnp"
)

type kvOp struct {
	verb  string // "put" or "get"
	key   string
	value string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rpc: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rpc, err := pnp.NewRPC("kv", 8)
	if err != nil {
		return err
	}
	alice, err := rpc.NewClient()
	if err != nil {
		return err
	}
	bob, err := rpc.NewClient()
	if err != nil {
		return err
	}
	server, err := rpc.NewServer()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rpc.Start(ctx); err != nil {
		return err
	}
	defer rpc.Stop()

	// The store lives entirely inside the handler; the handler runs on
	// the server goroutine, so no locking is needed.
	store := map[string]string{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = server.Serve(ctx, func(in any) any {
			op := in.(kvOp)
			switch op.verb {
			case "put":
				store[op.key] = op.value
				return "ok"
			case "get":
				if v, ok := store[op.key]; ok {
					return v
				}
				return "(missing)"
			default:
				return "bad verb"
			}
		})
	}()

	call := func(who string, c interface {
		Call(context.Context, any) (any, error)
	}, op kvOp) error {
		out, err := c.Call(ctx, op)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %s %s", who, op.verb, op.key)
		if op.verb == "put" {
			fmt.Printf("=%s", op.value)
		}
		fmt.Printf(" -> %v\n", out)
		return nil
	}

	ops := []struct {
		who string
		op  kvOp
	}{
		{"alice", kvOp{"put", "color", "teal"}},
		{"bob", kvOp{"put", "animal", "heron"}},
		{"alice", kvOp{"get", "animal", ""}},
		{"bob", kvOp{"get", "color", ""}},
		{"bob", kvOp{"get", "nothing", ""}},
	}
	for _, o := range ops {
		c := alice
		if o.who == "bob" {
			c = bob
		}
		if err := call(o.who, c, o.op); err != nil {
			return err
		}
	}
	cancel()
	rpc.Stop()
	wg.Wait()
	fmt.Println("\ntwo clients shared one server over plain message-passing connectors;")
	fmt.Println("selective receives on the call tag matched each reply to its caller")
	return nil
}
