// Bridge: the paper's Section 4 case study end to end. Verifies the
// initial exactly-N design (asynchronous enter sends) and prints the
// crash counterexample as a message sequence chart; swaps the send ports
// to synchronous — a connector-only change — and re-verifies; then checks
// the richer at-most-N design of Figure 14.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/bridge"
	"pnp/internal/checker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bridge: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cache := blocks.NewCache()

	fmt.Println("=== Single-lane bridge (paper Section 4) ===")
	fmt.Println()
	fmt.Println("[1] Initial design (Fig. 13): exactly-N, ASYNCHRONOUS blocking enter sends")
	res, err := bridge.Verify(bridge.Config{
		Variant:   bridge.ExactlyN,
		EnterSend: blocks.AsynBlockingSend,
	}, cache, checker.Options{BFS: true})
	if err != nil {
		return err
	}
	fmt.Printf("    %s\n", res.Summary())
	if !res.OK {
		fmt.Println("\n    shortest counterexample (both cars on the bridge):")
		fmt.Println(indent(res.Trace.String()))
		fmt.Println("    as a message sequence chart:")
		fmt.Println(indent(res.Trace.MSC(nil)))
	}

	fmt.Println("[2] The fix: swap the enter send ports to SYNCHRONOUS blocking.")
	fmt.Println("    (Car and controller component models are untouched.)")
	t0 := time.Now()
	res, err = bridge.Verify(bridge.Config{
		Variant:   bridge.ExactlyN,
		EnterSend: blocks.SynBlockingSend,
	}, cache, checker.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("    %s (%s)\n\n", res.Summary(), time.Since(t0).Round(time.Millisecond))

	fmt.Println("[3] At-most-N design (Fig. 14): controllers yield idle turns over")
	fmt.Println("    new connectors (sync blocking send, single slot, nonblocking recv).")
	fmt.Println("    (bounded sweep here; run `go test ./internal/bridge` for the")
	fmt.Println("    exhaustive 2.4M-state verification)")
	t0 = time.Now()
	res, err = bridge.Verify(bridge.Config{
		Variant:   bridge.AtMostN,
		EnterSend: blocks.SynBlockingSend,
	}, cache, checker.Options{MaxStates: 200000})
	if err != nil {
		return err
	}
	verdict := res.Summary()
	if res.Kind == checker.SearchLimit {
		verdict = fmt.Sprintf("no violation within %d states (bounded)", res.Stats.StatesStored)
	}
	fmt.Printf("    %s (%s)\n", verdict, time.Since(t0).Round(time.Millisecond))

	hits, misses := cache.Stats()
	fmt.Printf("\nmodel cache across the three runs: %d hits, %d misses\n", hits, misses)
	fmt.Println("(the exactly-N designs share one compiled program: the port swap reused it)")

	fmt.Println("\n[4] The same designs on the goroutine runtime (2 cars/side, 50 crossings each):")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, kind := range []blocks.SendPortKind{blocks.AsynBlockingSend, blocks.SynBlockingSend} {
		sim, err := bridge.Simulate(ctx, bridge.SimulationConfig{
			CarsPerSide: 2, N: 1, Crossings: 50, EnterSend: kind,
		})
		if err != nil {
			return err
		}
		fmt.Printf("    %-18s %4d crossings, %4d collisions, max %d car(s) on the bridge\n",
			kind, sim.Crossings, sim.Collisions, sim.MaxOn)
	}
	fmt.Println("    the race the checker found is real: the async build collides in practice")
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
