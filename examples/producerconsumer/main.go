// Producer/consumer: runs the same workload over several connector
// compositions on the runtime and reports throughput and observed
// behavior — the executable counterpart of the pnpmatrix sweep. Watch the
// dropping buffer lose messages and the checking send surface SEND_FAIL,
// while the component code never changes.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"pnp"
)

const messages = 2000

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "producerconsumer: %v\n", err)
		os.Exit(1)
	}
}

type outcome struct {
	spec      pnp.ConnectorSpec
	delivered int
	sendFails int
	dropped   int64
	elapsed   time.Duration
}

func run() error {
	specs := []pnp.ConnectorSpec{
		{Send: pnp.SynBlockingSend, Channel: pnp.SingleSlot, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.SingleSlot, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.FIFOQueue, Size: 64, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynCheckingSend, Channel: pnp.FIFOQueue, Size: 8, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.DroppingBuffer, Size: 8, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.PriorityQueue, Size: 64, Recv: pnp.BlockingRecv},
	}
	fmt.Printf("workload: %d messages, one producer, one consumer\n\n", messages)
	fmt.Printf("%-54s %10s %10s %8s %12s %12s\n",
		"connector", "delivered", "sendfails", "dropped", "msgs/sec", "time")
	for _, spec := range specs {
		oc, err := runOne(spec)
		if err != nil {
			return err
		}
		rate := float64(oc.delivered) / oc.elapsed.Seconds()
		fmt.Printf("%-54s %10d %10d %8d %12.0f %12s\n",
			oc.spec, oc.delivered, oc.sendFails, oc.dropped, rate, oc.elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nnote: the dropping buffer loses messages under pressure; the checking")
	fmt.Println("send reports SEND_FAIL instead of blocking. The producer and consumer")
	fmt.Println("code is identical in every row — only the connector changed.")
	return nil
}

func runOne(spec pnp.ConnectorSpec) (outcome, error) {
	conn, err := pnp.NewConnector("pipe", spec)
	if err != nil {
		return outcome{}, err
	}
	snd, err := conn.NewSender()
	if err != nil {
		return outcome{}, err
	}
	rcv, err := conn.NewReceiver()
	if err != nil {
		return outcome{}, err
	}
	if err := conn.Start(context.Background()); err != nil {
		return outcome{}, err
	}
	defer conn.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	oc := outcome{spec: spec}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < messages; i++ {
			st, err := snd.Send(ctx, pnp.Message{Data: i, Tag: i % 4})
			if err != nil {
				return
			}
			if st == pnp.SendFail {
				oc.sendFails++
			}
		}
	}()

	// The consumer drains until the producer is done and the pipe is dry:
	// a short grace timeout distinguishes "momentarily empty" from "done"
	// for the lossy connectors.
	for {
		rctx, rcancel := context.WithTimeout(ctx, 200*time.Millisecond)
		st, _, err := rcv.Receive(rctx, pnp.RecvRequest{})
		rcancel()
		if err != nil {
			break // drained (or global timeout)
		}
		if st == pnp.RecvSucc {
			oc.delivered++
			if oc.delivered == messages {
				break
			}
		}
	}
	wg.Wait()
	oc.elapsed = time.Since(start)
	oc.dropped = conn.Stats().Dropped
	return oc, nil
}
