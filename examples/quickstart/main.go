// Quickstart: design a connector from library blocks, verify the design
// with the model checker, hit a bug, fix it by swapping one block (no
// component changes), re-verify, and finally run the verified connector
// on the goroutine runtime.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"pnp"
)

// The component models: a producer that must not overrun the consumer.
// Components speak only the standard interfaces, so the connector between
// them can be swapped freely.
const components = `
byte produced, consumed;

proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   produced = produced + 1;
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}

proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: consumed < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> consumed = consumed + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3

	// 1. Design: producer -> connector -> consumer. First attempt uses a
	// dropping buffer (a poor choice the checker will expose).
	design := pnp.NewDesign("quickstart", components)
	design.AddConnector("Wire", pnp.ConnectorSpec{
		Send:    pnp.AsynBlockingSend,
		Channel: pnp.DroppingBuffer, Size: 1,
		Recv: pnp.BlockingRecv,
	})
	design.AddInstance("prod", "Producer", 1, pnp.SendTo("Wire"), pnp.IntArg(n))
	design.AddInstance("cons", "Consumer", 1, pnp.RecvFrom("Wire"), pnp.IntArg(n))
	design.AddInvariant("no-overrun", "consumed <= produced")
	// The delivery goal: from every reachable state, finishing all n
	// deliveries must remain possible (fairness-independent "nothing is
	// ever permanently lost").
	design.AddGoal("all-delivered", fmt.Sprintf("consumed == %d", n))

	cache := pnp.NewCache()
	results, err := design.Verify(cache, pnp.CheckOptions{})
	if err != nil {
		return err
	}
	fmt.Println("initial design (dropping buffer):")
	fmt.Printf("  safety:        %s\n", results["safety"].Summary())
	fmt.Printf("  all-delivered: %s\n", results["all-delivered"].Summary())
	if results.AllOK() {
		return fmt.Errorf("expected the dropping buffer to violate the delivery goal")
	}

	// 2. Plug-and-play fix: swap the channel block. The component models
	// above are byte-for-byte unchanged.
	fixed, err := design.WithChannel("Wire", pnp.FIFOQueue, 2)
	if err != nil {
		return err
	}
	results, err = fixed.Verify(cache, pnp.CheckOptions{})
	if err != nil {
		return err
	}
	fmt.Println("fixed design (FIFO buffer):")
	fmt.Printf("  safety:        %s\n", results["safety"].Summary())
	fmt.Printf("  all-delivered: %s\n", results["all-delivered"].Summary())
	if !results.AllOK() {
		return fmt.Errorf("fixed design still failing")
	}

	// 3. Run the same (verified) connector spec on the runtime.
	conn, err := fixed.RuntimeConnector("Wire")
	if err != nil {
		return err
	}
	snd, err := conn.NewSender()
	if err != nil {
		return err
	}
	rcv, err := conn.NewReceiver()
	if err != nil {
		return err
	}
	if err := conn.Start(context.Background()); err != nil {
		return err
	}
	defer conn.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		for i := 1; i <= n; i++ {
			if _, err := snd.Send(ctx, pnp.Message{Data: fmt.Sprintf("item-%d", i)}); err != nil {
				fmt.Fprintf(os.Stderr, "send: %v\n", err)
				return
			}
		}
	}()
	fmt.Println("runtime execution:")
	for i := 0; i < n; i++ {
		_, m, err := rcv.Receive(ctx, pnp.RecvRequest{})
		if err != nil {
			return err
		}
		fmt.Printf("  received %v\n", m.Data)
	}
	fmt.Println("done: the verified design ran unchanged on the runtime")
	return nil
}
