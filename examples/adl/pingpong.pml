/* Component models for the ping-pong ADL example. Both components use
 * only the standard Plug-and-Play interfaces, so the connector between
 * them can be swapped freely in pingpong.pnp. */

byte sent, got;

proctype Ping(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   sent = sent + 1;
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}

proctype Pong(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
