/* The single-lane bridge components (paper Section 4), written against
 * the standard Plug-and-Play interfaces. Used by bridge.pnp and
 * bridge-broken.pnp: the two ADL files differ only in one send-port kind,
 * and these component models are shared verbatim. */

byte blueOn, redOn;

proctype Car(chan esig; chan edat; chan xsig; chan xdat; bit color) {
	mtype st;
	end: do
	:: edat!1,0,0,0,1;
	   esig?st,_;
	   if
	   :: color == 0 -> blueOn = blueOn + 1
	   :: else -> redOn = redOn + 1
	   fi;
	   if
	   :: color == 0 -> blueOn = blueOn - 1
	   :: else -> redOn = redOn - 1
	   fi;
	   xdat!1,0,0,0,1;
	   xsig?st,_
	od
}

proctype TurnController(chan ensig; chan endat; chan exsig; chan exdat;
                        byte n; bit startsActive) {
	byte i;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	if
	:: startsActive -> skip
	:: else ->
	   i = 0;
	   do
	   :: i < n ->
	      exdat!0,0,0,0,1;
	      exsig?st,_;
	      exdat?d,sid,sd,sel,rem;
	      i = i + 1
	   :: else -> break
	   od
	fi;
	end: do
	:: i = 0;
	   do
	   :: i < n ->
	      endat!0,0,0,0,1;
	      ensig?st,_;
	      endat?d,sid,sd,sel,rem;
	      i = i + 1
	   :: else -> break
	   od;
	   i = 0;
	   do
	   :: i < n ->
	      exdat!0,0,0,0,1;
	      exsig?st,_;
	      exdat?d,sid,sd,sel,rem;
	      i = i + 1
	   :: else -> break
	   od
	od
}
